//! The robustness-suggestion framework (§5.1, eq. 1).
//!
//! For each heavily-shared conduit and each of its tenants, find the
//! minimum-shared-risk alternate path over the *existing* infrastructure
//! (eq. 1: `OP = argmin over all paths of the summed shared risk`), then
//! report path inflation (PI — extra hops) and shared-risk reduction (SRR —
//! the drop in the worst sharing level the tenant is exposed to on that
//! route). The hops the optimized path borrows from other providers'
//! footprints yield the best-peering suggestions of Table 5.

use std::collections::HashMap;

use intertubes_graph::{
    bidirectional_dijkstra, csr_dijkstra_filtered, EdgeId, NodeId, SearchState,
};
use intertubes_map::{FiberMap, MapConduitId};
use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

/// PI / SRR aggregates for one provider (one bar group of Fig. 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspRobustness {
    /// Provider name.
    pub isp: String,
    /// Optimized heavy links examined for this provider.
    pub cases: usize,
    /// Max / min / mean path inflation in hops.
    pub max_pi: f64,
    /// Minimum path inflation.
    pub min_pi: f64,
    /// Mean path inflation.
    pub avg_pi: f64,
    /// Max / min / mean shared-risk reduction.
    pub max_srr: f64,
    /// Minimum shared-risk reduction.
    pub min_srr: f64,
    /// Mean shared-risk reduction.
    pub avg_srr: f64,
}

/// The framework's full output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// The heavy conduits optimized.
    pub heavy_conduits: Vec<MapConduitId>,
    /// Per-provider PI/SRR aggregates (Fig. 10), roster order preserved.
    pub per_isp: Vec<IspRobustness>,
    /// Per-provider top-3 suggested peers (Table 5).
    pub peering: Vec<(String, Vec<String>)>,
}

/// The `k` most-shared conduits (the paper's "12 out of 542 shared by more
/// than 17 of the 20 ISPs").
pub fn heaviest_conduits(rm: &RiskMatrix, k: usize) -> Vec<MapConduitId> {
    let mut ids: Vec<usize> = (0..rm.conduit_count()).collect();
    ids.sort_by(|&x, &y| rm.shared[y].cmp(&rm.shared[x]).then(x.cmp(&y)));
    ids.into_iter()
        .take(k)
        .map(|i| MapConduitId(i as u32))
        .collect()
}

/// Runs the robustness-suggestion optimization for the given heavy
/// conduits, with unweighted peer voting.
pub fn robustness_suggestion(
    map: &FiberMap,
    rm: &RiskMatrix,
    heavy: &[MapConduitId],
) -> RobustnessReport {
    robustness_suggestion_weighted(map, rm, heavy, |_| 1.0)
}

/// Like [`robustness_suggestion`], with a caller-supplied weight on peer
/// candidates. Table 5's suggestions skew toward transit-grade providers —
/// weight tier-1 carriers above retail/regional footprints to reproduce
/// that (a provider can only *peer into* a carrier that sells transit).
pub fn robustness_suggestion_weighted(
    map: &FiberMap,
    rm: &RiskMatrix,
    heavy: &[MapConduitId],
    peer_weight: impl Fn(&str) -> f64,
) -> RobustnessReport {
    let mut span = intertubes_obs::stage("mitigation.robustness");
    span.items("heavy_conduits", heavy.len());
    span.items("isps", rm.isp_count());
    let graph = map.graph();
    let csr = graph.to_csr();
    // Shared-risk cost of traversing a conduit (eq. 1's SR term).
    let risk_of = |e: EdgeId| rm.shared[graph.edge(e).index()] as f64;

    let mut per_isp: Vec<IspRobustness> = Vec::new();
    let mut peer_votes: Vec<HashMap<String, f64>> =
        (0..rm.isp_count()).map(|_| HashMap::new()).collect();
    let mut pis: Vec<Vec<f64>> = vec![Vec::new(); rm.isp_count()];
    let mut srrs: Vec<Vec<f64>> = vec![Vec::new(); rm.isp_count()];

    let mut st = SearchState::new();
    let mut banned_edges = vec![false; graph.edge_count()];
    let banned_nodes = vec![false; graph.node_count()];
    for &hc in heavy {
        let conduit = &map.conduits[hc.index()];
        let original_risk = rm.shared[hc.index()] as f64;
        // Ban the heavy conduit itself; eq. 1 searches E_A, all alternate
        // paths over existing conduits. Edge ids equal conduit indices
        // (`FiberMap::graph` adds edges in conduit order).
        banned_edges[hc.index()] = true;
        let alt = csr_dijkstra_filtered(
            &csr,
            &mut st,
            NodeId(conduit.a.0),
            NodeId(conduit.b.0),
            risk_of,
            &banned_nodes,
            &banned_edges,
            None,
        );
        banned_edges[hc.index()] = false;
        // Risk costs are non-negative by construction; a conduit is simply
        // skipped if a search somehow errored.
        let Ok(Some(alt)) = alt else { continue };
        let alt_max_risk = alt
            .edges
            .iter()
            .map(|e| rm.shared[graph.edge(*e).index()] as f64)
            .fold(0.0, f64::max);
        let pi = (alt.hops() as f64 - 1.0).max(0.0);
        let srr = (original_risk - alt_max_risk).max(0.0);
        // Which tenants does this affect, and who could they peer with?
        for (i, _) in rm.isps.iter().enumerate() {
            if !rm.uses[i][hc.index()] {
                continue;
            }
            pis[i].push(pi);
            srrs[i].push(srr);
            // Peers: providers (other than i) present on the alternate
            // path's conduits — they are the ones to buy transit/IRU from.
            let mut seen: HashMap<usize, usize> = HashMap::new();
            for e in &alt.edges {
                let c = graph.edge(*e).index();
                for (j, uses) in rm.uses.iter().enumerate() {
                    if j != i && uses[c] {
                        *seen.entry(j).or_insert(0) += 1;
                    }
                }
            }
            for (j, n) in seen {
                let w = peer_weight(&rm.isps[j]);
                *peer_votes[i].entry(rm.isps[j].clone()).or_insert(0.0) += n as f64 * w;
            }
        }
    }

    let mut peering = Vec::with_capacity(rm.isp_count());
    for i in 0..rm.isp_count() {
        let (pi_v, srr_v) = (&pis[i], &srrs[i]);
        let agg = |v: &[f64]| -> (f64, f64, f64) {
            if v.is_empty() {
                return (0.0, 0.0, 0.0);
            }
            let max = v.iter().copied().fold(f64::MIN, f64::max);
            let min = v.iter().copied().fold(f64::MAX, f64::min);
            let avg = v.iter().sum::<f64>() / v.len() as f64;
            (max, min, avg)
        };
        let (max_pi, min_pi, avg_pi) = agg(pi_v);
        let (max_srr, min_srr, avg_srr) = agg(srr_v);
        per_isp.push(IspRobustness {
            isp: rm.isps[i].clone(),
            cases: pi_v.len(),
            max_pi,
            min_pi,
            avg_pi,
            max_srr,
            min_srr,
            avg_srr,
        });
        let mut votes: Vec<(String, f64)> = peer_votes[i].drain().collect();
        votes.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        peering.push((
            rm.isps[i].clone(),
            votes.into_iter().take(3).map(|(n, _)| n).collect(),
        ));
    }
    RobustnessReport {
        heavy_conduits: heavy.to_vec(),
        per_isp,
        peering,
    }
}

/// §5.1's whole-network scan: for every conduit, whether the existing
/// direct conduit is already the minimum-shared-risk route between its
/// endpoints. The paper found most existing paths already optimal, making
/// the 12 heavy links the profitable targets.
pub fn already_optimal_fraction(map: &FiberMap, rm: &RiskMatrix) -> f64 {
    let graph = map.graph();
    let csr = graph.to_csr();
    let risk_of = |e: EdgeId| rm.shared[graph.edge(e).index()] as f64;
    // One independent point query per conduit, masking only that conduit
    // via infinite cost (edge ids equal conduit indices). The verdict is
    // cost-only, and shared-risk costs are integers (exact f64 sums in any
    // association), so the bidirectional engine is safe here.
    let indices: Vec<usize> = (0..map.conduits.len()).collect();
    let chunk = intertubes_parallel::chunk_len(indices.len());
    let verdicts = intertubes_parallel::par_chunks_map(&indices, chunk, |_, chunk_indices| {
        let mut fwd = SearchState::new();
        let mut bwd = SearchState::new();
        chunk_indices
            .iter()
            .map(|&i| {
                let c = &map.conduits[i];
                let own_risk = rm.shared[i] as f64;
                let masked = |e: EdgeId| {
                    if e.index() == i {
                        f64::INFINITY
                    } else {
                        risk_of(e)
                    }
                };
                let alt = bidirectional_dijkstra(
                    &csr,
                    &mut fwd,
                    &mut bwd,
                    NodeId(c.a.0),
                    NodeId(c.b.0),
                    masked,
                );
                // The direct conduit is optimal unless a strictly
                // lower-risk alternate exists (errors cannot occur: risk
                // costs are non-negative by construction).
                !matches!(alt, Ok(Some(p)) if p.cost < own_risk)
            })
            .collect::<Vec<bool>>()
    });
    let optimal = verdicts.iter().flatten().filter(|&&v| v).count();
    optimal as f64 / map.conduits.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::{MapConduit, Provenance, Tenancy, TenancySource};

    /// Square A-B (heavy), plus A-C, C-B lightly shared detour.
    fn toy() -> (FiberMap, RiskMatrix) {
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(40.0, -99.0));
        let c = m.ensure_node("C, XX", GeoPoint::new_unchecked(40.5, -99.5));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        let line = |m: &FiberMap, x: intertubes_map::MapNodeId, y: intertubes_map::MapNodeId| {
            Polyline::straight(m.nodes[x.index()].location, m.nodes[y.index()].location)
        };
        let heavy = MapConduit {
            a,
            b,
            geometry: line(&m, a, b),
            tenants: vec![t("W"), t("X"), t("Y"), t("Z")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        };
        let ac = MapConduit {
            a,
            b: c,
            geometry: line(&m, a, c),
            tenants: vec![t("W")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        };
        let cb = MapConduit {
            a: c,
            b,
            geometry: line(&m, c, b),
            tenants: vec![t("W"), t("X")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        };
        m.conduits.extend([heavy, ac, cb]);
        let rm = RiskMatrix::build(&m, &["W".into(), "X".into(), "Y".into(), "Z".into()]);
        (m, rm)
    }

    #[test]
    fn heaviest_selects_by_share_count() {
        let (_, rm) = toy();
        let h = heaviest_conduits(&rm, 1);
        assert_eq!(h, vec![MapConduitId(0)]);
        assert_eq!(heaviest_conduits(&rm, 2).len(), 2);
    }

    #[test]
    fn reroute_reduces_risk_with_one_extra_hop() {
        let (m, rm) = toy();
        let report = robustness_suggestion(&m, &rm, &heaviest_conduits(&rm, 1));
        // Every tenant of the heavy conduit gets PI = 1 (2 hops vs 1) and
        // SRR = 4 - max(1, 2) = 2.
        for r in &report.per_isp {
            assert_eq!(r.cases, 1, "{}", r.isp);
            assert_eq!(r.avg_pi, 1.0, "{}", r.isp);
            assert_eq!(r.avg_srr, 2.0, "{}", r.isp);
        }
    }

    #[test]
    fn peering_suggests_detour_owners() {
        let (m, rm) = toy();
        let report = robustness_suggestion(&m, &rm, &heaviest_conduits(&rm, 1));
        // For tenants Y and Z (not on the detour), W covers both detour
        // conduits and X covers one — W must rank first.
        let y = report.peering.iter().find(|(n, _)| n == "Y").unwrap();
        assert_eq!(y.1[0], "W", "peering for Y: {:?}", y.1);
        assert!(y.1.contains(&"X".to_string()));
        // W's own suggestions must not include W.
        let w = report.peering.iter().find(|(n, _)| n == "W").unwrap();
        assert!(!w.1.contains(&"W".to_string()));
    }

    #[test]
    fn already_optimal_fraction_counts_detours() {
        let (m, rm) = toy();
        let frac = already_optimal_fraction(&m, &rm);
        // The heavy conduit (risk 4) has a cheaper alternate (1+2=3): not
        // optimal. The two detour conduits have no cheaper alternates.
        assert!((frac - 2.0 / 3.0).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn isolated_heavy_conduit_is_skipped() {
        // Heavy conduit with no alternate path: no PI/SRR cases.
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(40.0, -99.0));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(40.0, -100.0),
                GeoPoint::new_unchecked(40.0, -99.0),
            ),
            tenants: vec![t("X"), t("Y")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        let rm = RiskMatrix::build(&m, &["X".into(), "Y".into()]);
        let report = robustness_suggestion(&m, &rm, &heaviest_conduits(&rm, 1));
        assert!(report.per_isp.iter().all(|r| r.cases == 0));
    }
}
