//! The multi-snapshot registry (DESIGN.md §14.3).
//!
//! One serving process holds several loaded snapshots — different worlds
//! or seeds — and routes each request frame by its snapshot id. Every
//! entry owns its engine and result cache; cache keys are additionally
//! scoped by the snapshot id (see `intertubes_serve::query::scoped_key`),
//! so even a future shared cache could not alias identical queries across
//! worlds. All entries report into one shared [`ServeTelemetry`].

use std::collections::BTreeMap;
use std::sync::Arc;

use intertubes_serve::{
    run_batch_telemetry, QueryEngine, Query, ResultCache, ServeConfig, ServeStats, ServeTelemetry,
};

/// One served snapshot: engine, private cache, scheduler knobs.
struct RegistryEntry {
    engine: QueryEngine,
    cache: ResultCache,
    cfg: ServeConfig,
}

/// Routes request batches to loaded snapshots by id.
pub struct SnapshotRegistry {
    entries: BTreeMap<String, RegistryEntry>,
    telemetry: Arc<ServeTelemetry>,
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        SnapshotRegistry::new()
    }
}

impl SnapshotRegistry {
    /// An empty registry with a fresh telemetry sink.
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::with_telemetry(Arc::new(ServeTelemetry::new()))
    }

    /// An empty registry reporting into `telemetry`.
    pub fn with_telemetry(telemetry: Arc<ServeTelemetry>) -> SnapshotRegistry {
        SnapshotRegistry {
            entries: BTreeMap::new(),
            telemetry,
        }
    }

    /// Loads `engine` under `id`. The engine's snapshot id is overwritten
    /// with `id` so cache keys and telemetry agree with the routing table;
    /// a previous entry under the same id is replaced.
    pub fn insert(&mut self, id: &str, mut engine: QueryEngine, cfg: ServeConfig) {
        engine.set_snapshot_id(id);
        engine.attach_telemetry(Arc::clone(&self.telemetry));
        let cache = ResultCache::new(cfg.cache);
        self.entries.insert(
            id.to_string(),
            RegistryEntry { engine, cache, cfg },
        );
    }

    /// Whether `id` is served.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.contains_key(id)
    }

    /// Served snapshot ids, in order.
    pub fn ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// The shared telemetry sink.
    pub fn telemetry(&self) -> &Arc<ServeTelemetry> {
        &self.telemetry
    }

    /// Serves one batch against the snapshot `id`, returning canonical
    /// response JSON per query (input order) — or `None` for an unknown
    /// id (the caller answers with an `unknown-snapshot` error frame).
    pub fn serve(&self, id: &str, queries: &[Query]) -> Option<(Vec<String>, ServeStats)> {
        let entry = self.entries.get(id)?;
        Some(run_batch_telemetry(
            &entry.engine,
            queries,
            &entry.cfg,
            &entry.cache,
            &self.telemetry,
        ))
    }
}
