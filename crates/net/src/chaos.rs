//! Transport-layer fault injection (DESIGN.md §14.5).
//!
//! Extends the runtime chaos discipline (`intertubes-serve::chaos`) to the
//! wire: the three transport families of the `FaultPlan` DSL — torn
//! frames, slow-loris partial writes, mid-stream disconnects — are applied
//! by the **server** when a response frame is queued. Decisions are pure
//! functions of `(plan seed, family, connection ordinal, frame ordinal)`
//! via splitmix64, never of wall-clock, matching the seeded-stream rule
//! every other injector follows.
//!
//! Torn frames and disconnects destroy the response in flight; the client
//! rides them out by reconnecting and resending (the engine is pure, so
//! the retried answer is byte-identical). Slow-loris only changes *pacing*
//! — the bytes are intact — so it needs no retry at all. That is what the
//! remote gate's chaos arm byte-compares against a clean run.

use intertubes_faults::{FaultFamily, FaultPlan};
use intertubes_serve::splitmix64;

/// What the injector decided for one queued response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Send a prefix of the frame, then close the connection.
    TornFrame,
    /// Send the whole frame, but dribbled a few bytes per poll tick.
    SlowLoris,
    /// Close the connection before any byte of the frame is sent.
    Disconnect,
}

impl TransportFault {
    /// Stable label (server report, diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            TransportFault::TornFrame => "torn-frame",
            TransportFault::SlowLoris => "slow-loris",
            TransportFault::Disconnect => "disconnect",
        }
    }
}

/// Seeded decision table for the three transport families.
#[derive(Debug, Clone, Copy)]
pub struct TransportChaos {
    seed: u64,
    torn: f64,
    loris: f64,
    disconnect: f64,
}

impl TransportChaos {
    /// Captures the plan's transport rates (clamped by `FaultPlan::rate`).
    /// Returns `None` when the plan carries no transport families — the
    /// clean-path server then skips the injector entirely.
    pub fn from_plan(plan: &FaultPlan) -> Option<TransportChaos> {
        let torn = plan.rate(FaultFamily::TornFrame);
        let loris = plan.rate(FaultFamily::SlowLoris);
        let disconnect = plan.rate(FaultFamily::Disconnect);
        if torn <= 0.0 && loris <= 0.0 && disconnect <= 0.0 {
            return None;
        }
        Some(TransportChaos {
            seed: plan.seed,
            torn,
            loris,
            disconnect,
        })
    }

    /// One seeded uniform draw in `[0, 1)` per (family-tag, conn, frame).
    fn draw(&self, tag: u64, conn: u64, frame: u64) -> f64 {
        let mut c = conn.wrapping_add(1);
        let mut f = frame.wrapping_add(0x5151_5151);
        let mut state = self.seed
            ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ splitmix64(&mut c)
            ^ splitmix64(&mut f);
        let mixed = splitmix64(&mut state);
        // 53 high bits → uniform double in [0, 1).
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of response frame `frame` on connection `conn`
    /// (both server-assigned ordinals). Families are tried in declaration
    /// order — disconnect, torn, slow-loris — and at most one fires, so
    /// composed plans stay well-defined.
    pub fn decide(&self, conn: u64, frame: u64) -> Option<TransportFault> {
        if self.draw(0x0D15, conn, frame) < self.disconnect {
            return Some(TransportFault::Disconnect);
        }
        if self.draw(0x702A, conn, frame) < self.torn {
            return Some(TransportFault::TornFrame);
        }
        if self.draw(0x5105, conn, frame) < self.loris {
            return Some(TransportFault::SlowLoris);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plans_build_no_injector() {
        assert!(TransportChaos::from_plan(&FaultPlan::new(1)).is_none());
        let snapshot_only = FaultPlan::new(1).with(FaultFamily::TornSnapshotWrite, 0.9);
        assert!(TransportChaos::from_plan(&snapshot_only).is_none());
    }

    #[test]
    fn decisions_are_seeded_and_rate_bounded() {
        let plan = FaultPlan::new(77)
            .with(FaultFamily::TornFrame, 0.25)
            .with(FaultFamily::Disconnect, 0.1);
        let chaos = TransportChaos::from_plan(&plan).unwrap();
        let run = |chaos: &TransportChaos| -> Vec<Option<TransportFault>> {
            (0..400).map(|i| chaos.decide(i / 40, i)).collect()
        };
        // Same seed → same decision vector.
        assert_eq!(run(&chaos), run(&TransportChaos::from_plan(&plan).unwrap()));
        let outcomes = run(&chaos);
        let fired = outcomes.iter().flatten().count();
        assert!(fired > 0, "rates this high must fire over 400 frames");
        assert!(fired < 400, "faults must not fire on every frame");
        // SlowLoris has rate 0 here and must never fire.
        assert!(!outcomes
            .iter()
            .flatten()
            .any(|f| *f == TransportFault::SlowLoris));
        // A different seed decides differently somewhere.
        let other = TransportChaos::from_plan(
            &FaultPlan::new(78)
                .with(FaultFamily::TornFrame, 0.25)
                .with(FaultFamily::Disconnect, 0.1),
        )
        .unwrap();
        assert_ne!(outcomes, run(&other));
    }

    #[test]
    fn built_in_torn_frame_scenario_drives_the_injector() {
        let plan = FaultPlan::built_in_chaos_scenarios()
            .into_iter()
            .find(|(name, _)| *name == "torn-frame")
            .map(|(_, plan)| plan)
            .unwrap();
        let chaos = TransportChaos::from_plan(&plan).unwrap();
        let fired = (0..200).filter(|i| chaos.decide(0, *i).is_some()).count();
        assert!(fired > 0);
    }
}
