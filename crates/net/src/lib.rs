//! The remote multi-tenant serving front-end (DESIGN.md §14).
//!
//! `intertubes-serve` answers local replay files against one snapshot;
//! this crate puts a wire in front of it without bending the byte-identity
//! contract:
//!
//! * [`wire`] — the `intertubes-wire/v1` length-prefixed binary frame
//!   protocol: magic, version, tenant id, snapshot id, request id, and an
//!   FNV-1a-checksummed canonical-JSON payload, with staged typed
//!   [`wire::WireError`] decoding mirroring the snapshot container;
//! * [`registry`] — a multi-snapshot registry serving several loaded
//!   worlds/seeds from one process, routing each frame by snapshot id
//!   (cache keys are snapshot-scoped, so identical queries against
//!   different snapshots never alias);
//! * [`server`] — a single-threaded non-blocking poll loop (over the
//!   vendored `netpoll` shim) enforcing per-tenant token-bucket quotas
//!   **ahead of** the scheduler's queue-position admission — quota
//!   rejections are typed `Rejected` responses, never drops, and land in
//!   the `ServeTelemetry` count plane as per-tenant aggregates;
//! * [`client`] — a reconnect-and-resend client plus the multi-client
//!   harness proving responses byte-identical across 1/2/8 concurrent
//!   clients × cache on/off × snapshot count;
//! * [`chaos`] — transport fault injection (torn frames, slow-loris
//!   partial writes, mid-stream disconnects) driven by the `FaultPlan`
//!   transport families under the same seeded-stream discipline as every
//!   other injector.
//!
//! The determinism claim the remote gate enforces: because the engine is
//! pure, quota buckets tick in request-count time, and answers are
//! correlated by request id, the per-request response bytes are identical
//! no matter how many clients carry the workload or which transport
//! faults are injected along the way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod registry;
pub mod server;
pub mod wire;

// The socket shim, for callers (the CLI) that bind the listener
// themselves before handing it to [`NetServer::run`].
pub use netpoll;

pub use chaos::{TransportChaos, TransportFault};
pub use client::{run_clients, NetClient, NetReply};
pub use registry::SnapshotRegistry;
pub use server::{NetServer, RunningServer, ServerReport};
pub use wire::{
    decode_frame, encode_frame, Frame, FrameKind, FrameReader, WireError, HEADER_LEN,
    MAX_FRAME_LEN, WIRE_MAGIC, WIRE_SCHEMA, WIRE_VERSION,
};
