//! The serving client and the multi-client determinism harness
//! (DESIGN.md §14.6).
//!
//! [`NetClient`] keeps one connection, one outstanding request at a time,
//! and rides out transport chaos by reconnecting and resending: the
//! engine is pure and requests are idempotent, so a retried answer is
//! byte-identical to the one the fault destroyed. Protocol error frames
//! are **not** retried — resending a malformed or unroutable frame would
//! only fail again — and surface as [`NetReply::ErrorFrame`].
//!
//! [`run_clients`] is the determinism harness the remote gate drives: a
//! fixed workload is split round-robin over K client threads (request id
//! = workload index), answers are matched by request id, and the merged
//! response vector is returned in workload order — byte-comparable across
//! K = 1/2/8, cache on/off, and against local replay.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

use intertubes_serve::Query;
use netpoll::{NbStream, ReadOutcome};

use crate::wire::{encode_frame, Frame, FrameKind, FrameReader, WireError};

/// Reconnect-and-resend attempts before a request is abandoned.
const MAX_ATTEMPTS: usize = 64;

/// Poll ticks (~0.5 ms each) to wait for one response before the attempt
/// is written off as lost. Generous: a wave against a large snapshot can
/// take a while. Failure-path only — no response byte depends on it.
const WAIT_TICKS: usize = 120_000;

/// A terminal answer from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetReply {
    /// A response frame's canonical JSON payload.
    Response(String),
    /// An error frame's payload (`{"error": ..., "detail": ...}`).
    ErrorFrame(String),
}

impl NetReply {
    /// The payload, whichever kind arrived.
    pub fn payload(&self) -> &str {
        match self {
            NetReply::Response(p) | NetReply::ErrorFrame(p) => p,
        }
    }
}

/// One tenant's connection to a serving front-end.
pub struct NetClient {
    addr: SocketAddr,
    tenant: String,
    conn: Option<(NbStream, FrameReader)>,
}

impl NetClient {
    /// A client for `tenant`, connecting lazily to `addr`.
    pub fn new(addr: impl ToSocketAddrs, tenant: &str) -> io::Result<NetClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("address resolved to nothing"))?;
        Ok(NetClient {
            addr,
            tenant: tenant.to_string(),
            conn: None,
        })
    }

    /// The tenant this client identifies as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn connected(&mut self) -> Result<&mut (NbStream, FrameReader), WireError> {
        if self.conn.is_none() {
            let stream =
                NbStream::connect(self.addr).map_err(|e| WireError::Io(e.to_string()))?;
            self.conn = Some((stream, FrameReader::new()));
        }
        // Just ensured Some; unreachable fallback keeps this panic-free.
        self.conn.as_mut().ok_or(WireError::Closed)
    }

    /// Sends `query` against `snapshot` and waits for the matching
    /// answer. Transport failures reconnect and resend transparently;
    /// protocol errors surface as [`NetReply::ErrorFrame`].
    pub fn request(
        &mut self,
        snapshot: &str,
        request_id: u64,
        query: &Query,
    ) -> Result<NetReply, WireError> {
        // A query is a plain data enum; serialization cannot fail.
        let payload = serde_json::to_string(query).unwrap_or_default();
        let frame = Frame::request(&self.tenant, snapshot, request_id, payload);
        let bytes = encode_frame(&frame)?;
        let mut last = WireError::Closed;
        for _ in 0..MAX_ATTEMPTS {
            match self.attempt(&bytes, request_id) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable() => {
                    self.conn = None; // reconnect on the next attempt
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// One send + wait on the current connection.
    fn attempt(&mut self, bytes: &[u8], request_id: u64) -> Result<NetReply, WireError> {
        let (stream, reader) = self.connected()?;
        // Send the whole frame (non-blocking writes may take many ticks).
        let mut sent = 0;
        while sent < bytes.len() {
            match stream.write_some(&bytes[sent..]) {
                Ok(0) => netpoll::tick(),
                Ok(n) => sent += n,
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
        // Wait for the matching answer.
        let mut buf = vec![0u8; 64 * 1024];
        for _ in 0..WAIT_TICKS {
            match stream.read_some(&mut buf) {
                Ok(ReadOutcome::Data(n)) => reader.feed(&buf[..n]),
                Ok(ReadOutcome::Pending) => {
                    netpoll::tick();
                    continue;
                }
                Ok(ReadOutcome::Closed) => return Err(reader.close()),
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
            loop {
                match reader.next_frame()? {
                    Some(frame) if frame.request_id == request_id => {
                        return match frame.kind {
                            FrameKind::Error => Ok(NetReply::ErrorFrame(frame.payload)),
                            _ => Ok(NetReply::Response(frame.payload)),
                        };
                    }
                    // An answer to a request a previous attempt gave up
                    // on; correlation ids make it safe to skip.
                    Some(_) => continue,
                    None => break,
                }
            }
        }
        Err(WireError::Io("timed out waiting for response".to_string()))
    }

    /// Closes the connection (a clean client-initiated session end — what
    /// the server's `--sessions` exit condition counts).
    pub fn close(&mut self) {
        if let Some((stream, _)) = self.conn.take() {
            stream.shutdown();
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.close();
    }
}

/// The multi-client determinism harness: splits `queries` round-robin
/// over `clients` concurrent connections (request id = workload index)
/// and returns the payloads merged back into workload order. Any
/// transport-level failure aborts the whole run with the error.
pub fn run_clients(
    addr: SocketAddr,
    tenant: &str,
    snapshot: &str,
    queries: &[Query],
    clients: usize,
) -> Result<Vec<String>, WireError> {
    let clients = clients.max(1);
    let mut slots: Vec<Option<String>> = vec![None; queries.len()];
    let results: Vec<Result<Vec<(usize, String)>, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|j| {
                scope.spawn(move || {
                    let mut client = NetClient::new(addr, tenant)
                        .map_err(|e| WireError::Io(e.to_string()))?;
                    let mut answers = Vec::new();
                    for (i, query) in queries.iter().enumerate() {
                        if i % clients != j {
                            continue;
                        }
                        let reply = client.request(snapshot, i as u64, query)?;
                        answers.push((i, reply.payload().to_string()));
                    }
                    client.close();
                    Ok(answers)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(WireError::Io("client thread panicked".to_string())),
            })
            .collect()
    });
    for result in results {
        for (i, payload) in result? {
            slots[i] = Some(payload);
        }
    }
    Ok(slots.into_iter().map(Option::unwrap_or_default).collect())
}
