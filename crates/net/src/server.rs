//! The serving front-end's poll loop (DESIGN.md §14.2).
//!
//! One single-threaded, non-blocking loop owns every connection: accept,
//! read + reassemble frames, route by snapshot id through the
//! [`SnapshotRegistry`], answer, flush. Query *computation* still fans out
//! inside the wave scheduler (`run_batch_telemetry`'s parallel compute
//! phase) — the loop only serializes the decide/assemble work the
//! determinism contract already requires to be serial, so a poll loop
//! costs no parallelism the scheduler didn't already forbid.
//!
//! Ordering discipline: frames are routed in (connection ordinal, arrival
//! order) and snapshot batches run in id order, so the per-frame answers
//! are a deterministic function of what arrived — and since the engine is
//! pure and responses are matched by request id, *how* requests interleave
//! across ticks cannot change any response byte.
//!
//! Per-tenant token-bucket quotas gate every request **before** it
//! reaches the scheduler's queue-position admission: an over-quota frame
//! costs no queue slot and is answered with a typed `Rejected` response —
//! never a drop, never a closed connection (DESIGN.md §14.4).

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use intertubes_faults::FaultPlan;
use intertubes_serve::{
    quota_rejection, Query, QuotaConfig, QuotaDecision, Response, TenantQuotas,
};
use netpoll::{NbListener, NbStream, ReadOutcome};

use crate::chaos::{TransportChaos, TransportFault};
use crate::registry::SnapshotRegistry;
use crate::wire::{Frame, FrameKind, FrameReader, WireError};

/// Bytes per poll tick a slow-loris'd connection is allowed to flush.
const LORIS_CHUNK: usize = 7;

/// Read buffer per connection per tick.
const READ_BUF: usize = 64 * 1024;

/// What one server run did (all counters are totals over the run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Request frames decoded.
    pub frames: u64,
    /// Response frames produced (engine answers + quota rejections).
    pub responses: u64,
    /// Error frames produced (wire/protocol failures).
    pub errors: u64,
    /// Frames answered with a quota `Rejected` response.
    pub quota_rejected: u64,
    /// Transport faults injected (torn/loris/disconnect).
    pub chaos_injected: u64,
    /// Client-initiated session closes observed (server-initiated chaos
    /// closes never count — the reconnecting client is the same session).
    pub sessions_closed: u64,
}

/// One live connection's state.
struct Conn {
    stream: NbStream,
    reader: FrameReader,
    /// Bytes queued for the peer, drained by `write_some`.
    outbox: Vec<u8>,
    /// Response frames queued on this connection (chaos stream index).
    frames_out: u64,
    /// When set, flush at most this many bytes per tick (slow-loris).
    chunk: Option<usize>,
    /// Close once the outbox drains (error frames, torn frames).
    close_after_flush: bool,
    /// The server decided to close — a peer EOF after this is not a
    /// client-initiated session end.
    server_closed: bool,
}

impl Conn {
    fn new(stream: NbStream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            outbox: Vec::new(),
            frames_out: 0,
            chunk: None,
            close_after_flush: false,
            server_closed: false,
        }
    }
}

/// The remote serving front-end. Configure, then [`NetServer::spawn`] (in
/// process) or [`NetServer::run`] (the CLI's foreground path).
pub struct NetServer {
    registry: SnapshotRegistry,
    quotas: TenantQuotas,
    chaos: Option<TransportChaos>,
    session_limit: Option<u64>,
}

impl NetServer {
    /// A front-end over `registry` with unlimited quotas and no chaos.
    pub fn new(registry: SnapshotRegistry) -> NetServer {
        NetServer {
            registry,
            quotas: TenantQuotas::new(QuotaConfig::default()),
            chaos: None,
            session_limit: None,
        }
    }

    /// Enforces `quota` per tenant, ahead of queue-position admission.
    pub fn with_quota(mut self, quota: QuotaConfig) -> NetServer {
        self.quotas = TenantQuotas::new(quota);
        self
    }

    /// Arms the transport chaos injector with the plan's transport-family
    /// rates (a plan without them leaves the server clean).
    pub fn with_chaos(mut self, plan: &FaultPlan) -> NetServer {
        self.chaos = TransportChaos::from_plan(plan);
        self
    }

    /// Exit after `n` client-initiated session closes (the CLI's
    /// `--sessions` termination condition).
    pub fn with_session_limit(mut self, n: u64) -> NetServer {
        self.session_limit = Some(n);
        self
    }

    /// The registry being served.
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.registry
    }

    /// Binds `addr` and runs the poll loop on a background thread.
    /// Binding port 0 picks an ephemeral port; see [`RunningServer::addr`].
    pub fn spawn(self, addr: &str) -> io::Result<RunningServer> {
        let listener = NbListener::bind(addr)?;
        let local = listener.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("intertubes-net".to_string())
            .spawn(move || self.serve_loop(&listener, Some(&flag)))?;
        Ok(RunningServer {
            addr: local,
            stop,
            handle,
        })
    }

    /// Runs the poll loop in the foreground until the session limit is
    /// reached (never, without one).
    pub fn run(self, listener: &NbListener) -> io::Result<ServerReport> {
        self.serve_loop(listener, None)
    }

    /// The poll loop. One pass = accept, read, route, answer, flush.
    fn serve_loop(
        mut self,
        listener: &NbListener,
        stop: Option<&AtomicBool>,
    ) -> io::Result<ServerReport> {
        let mut report = ServerReport::default();
        let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
        let mut next_conn: u64 = 0;
        loop {
            if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                break;
            }
            if self
                .session_limit
                .is_some_and(|n| report.sessions_closed >= n)
            {
                break;
            }
            let mut progressed = false;

            // Accept everything pending.
            let mut accepted = 0u64;
            while let Some((stream, _peer)) = listener.accept()? {
                conns.insert(next_conn, Conn::new(stream));
                next_conn += 1;
                accepted += 1;
            }
            if accepted > 0 {
                progressed = true;
                report.accepted += accepted;
                let mut stage = intertubes_obs::stage("net.accept");
                stage.items("connections", accepted as usize);
            }

            // Read + reassemble. Frames keep (conn, frame) for replies.
            let mut inbound: Vec<(u64, Frame)> = Vec::new();
            let mut dead: Vec<u64> = Vec::new();
            let mut buf = vec![0u8; READ_BUF];
            for (&cid, conn) in conns.iter_mut() {
                if conn.close_after_flush {
                    continue; // already answering a fatal error
                }
                loop {
                    match conn.stream.read_some(&mut buf) {
                        Ok(ReadOutcome::Data(n)) => {
                            progressed = true;
                            conn.reader.feed(&buf[..n]);
                        }
                        Ok(ReadOutcome::Pending) => break,
                        Ok(ReadOutcome::Closed) => {
                            progressed = true;
                            if !conn.server_closed {
                                report.sessions_closed += 1;
                            }
                            dead.push(cid);
                            break;
                        }
                        Err(e) => {
                            progressed = true;
                            intertubes_obs::counter("net.read_errors", 1);
                            let _ = e; // surfaced as a dropped connection
                            dead.push(cid);
                            break;
                        }
                    }
                }
                if dead.last() == Some(&cid) {
                    continue;
                }
                loop {
                    match conn.reader.next_frame() {
                        Ok(Some(frame)) => inbound.push((cid, frame)),
                        Ok(None) => break,
                        Err(e) => {
                            // Unsynchronized stream: answer with a typed
                            // error frame, then close after it flushes.
                            // Never a hang, never a process exit.
                            report.errors += 1;
                            let reply = Frame {
                                kind: FrameKind::Error,
                                tenant: String::new(),
                                snapshot: String::new(),
                                request_id: 0,
                                payload: e.to_error_payload(),
                            };
                            queue_frame(conn, &reply);
                            conn.close_after_flush = true;
                            conn.server_closed = true;
                            break;
                        }
                    }
                }
            }
            for cid in dead.drain(..) {
                conns.remove(&cid);
            }

            // Route + answer.
            if !inbound.is_empty() {
                progressed = true;
                report.frames += inbound.len() as u64;
                let mut stage = intertubes_obs::stage("net.frame");
                stage.items("frames", inbound.len());
                drop(stage);
                let replies = self.route(&inbound, &mut report);
                for (cid, reply) in replies {
                    let Some(conn) = conns.get_mut(&cid) else {
                        continue; // peer vanished; answer has nowhere to go
                    };
                    self.dispatch(cid, conn, &reply, &mut report);
                }
            }

            // Flush outboxes; retire drained close-after-flush conns.
            for (&cid, conn) in conns.iter_mut() {
                if conn.outbox.is_empty() {
                    continue;
                }
                let budget = conn.chunk.unwrap_or(conn.outbox.len());
                let take = budget.min(conn.outbox.len());
                match conn.stream.write_some(&conn.outbox[..take]) {
                    Ok(0) => {}
                    Ok(n) => {
                        progressed = true;
                        conn.outbox.drain(0..n);
                    }
                    Err(_) => {
                        progressed = true;
                        conn.outbox.clear();
                        conn.server_closed = true;
                        dead.push(cid);
                    }
                }
            }
            conns.retain(|_, conn| {
                if conn.close_after_flush && conn.outbox.is_empty() {
                    conn.stream.shutdown();
                    return false;
                }
                true
            });
            for cid in dead.drain(..) {
                conns.remove(&cid);
            }

            if !progressed {
                netpoll::tick();
            }
        }
        Ok(report)
    }

    /// Routes decoded frames: quota gate, snapshot lookup, per-snapshot
    /// batches through the wave scheduler. Returns reply frames tagged
    /// with their connection.
    fn route(&mut self, inbound: &[(u64, Frame)], report: &mut ServerReport) -> Vec<(u64, Frame)> {
        let mut stage = intertubes_obs::stage("net.route");
        stage.items("frames", inbound.len());
        let telemetry = Arc::clone(self.registry.telemetry());
        let mut replies: Vec<Option<(u64, Frame)>> = vec![None; inbound.len()];
        // Per-snapshot batch: (reply slot, originating frame, query).
        let mut batches: BTreeMap<String, Vec<(usize, usize, Query)>> = BTreeMap::new();
        for (slot, (cid, frame)) in inbound.iter().enumerate() {
            if frame.kind != FrameKind::Request {
                report.errors += 1;
                let e = WireError::BadKind {
                    found: frame.kind.as_u8(),
                };
                replies[slot] = Some((*cid, frame.reply(FrameKind::Error, e.to_error_payload())));
                continue;
            }
            // Quota gate — ahead of queue-position admission, so a hot
            // tenant's flood never occupies slots other tenants could use.
            let admitted = self.quotas.admit(&frame.tenant) == QuotaDecision::Admitted;
            telemetry.note_tenant(&frame.tenant, admitted);
            if !admitted {
                report.quota_rejected += 1;
                report.responses += 1;
                let json = Response::Rejected {
                    reason: quota_rejection(&frame.tenant, &self.quotas.config()),
                }
                .to_canonical_json();
                replies[slot] = Some((*cid, frame.reply(FrameKind::Response, json)));
                continue;
            }
            if !self.registry.contains(&frame.snapshot) {
                report.errors += 1;
                let e = WireError::UnknownSnapshot {
                    id: frame.snapshot.clone(),
                };
                replies[slot] = Some((*cid, frame.reply(FrameKind::Error, e.to_error_payload())));
                continue;
            }
            match serde_json::from_str::<Query>(&frame.payload) {
                Ok(query) => {
                    batches
                        .entry(frame.snapshot.clone())
                        .or_default()
                        .push((slot, slot, query));
                }
                Err(e) => {
                    // Well-framed but not a query: a typed response, not a
                    // wire error — the connection stays healthy.
                    report.responses += 1;
                    let json = Response::InvalidQuery {
                        reason: format!("unparseable query payload: {e}"),
                    }
                    .to_canonical_json();
                    replies[slot] = Some((*cid, frame.reply(FrameKind::Response, json)));
                }
            }
        }
        for (snapshot, batch) in &batches {
            let queries: Vec<Query> = batch.iter().map(|(_, _, q)| q.clone()).collect();
            // contains() was checked above; serve() only fails on a
            // concurrent unload, which this single-owner loop never does.
            let Some((responses, _stats)) = self.registry.serve(snapshot, &queries) else {
                continue;
            };
            report.responses += responses.len() as u64;
            for ((slot, _, _), json) in batch.iter().zip(responses) {
                let (cid, frame) = &inbound[*slot];
                replies[*slot] = Some((*cid, frame.reply(FrameKind::Response, json)));
            }
        }
        stage.items("batches", batches.len());
        replies.into_iter().flatten().collect()
    }

    /// Queues one reply frame, applying transport chaos when armed. The
    /// chaos draw is keyed by the **global** connection ordinal, so a
    /// client retrying on a fresh connection rolls a fresh draw — a
    /// deterministic tear-forever loop is impossible.
    fn dispatch(&self, cid: u64, conn: &mut Conn, reply: &Frame, report: &mut ServerReport) {
        let frame_idx = conn.frames_out;
        conn.frames_out += 1;
        let fault = self.chaos.and_then(|c| c.decide(cid, frame_idx));
        match fault {
            Some(TransportFault::Disconnect) => {
                report.chaos_injected += 1;
                intertubes_obs::counter("net.chaos_disconnect", 1);
                conn.server_closed = true;
                conn.close_after_flush = true; // flush nothing new; close
            }
            Some(TransportFault::TornFrame) => {
                report.chaos_injected += 1;
                intertubes_obs::counter("net.chaos_torn_frame", 1);
                if let Ok(bytes) = crate::wire::encode_frame(reply) {
                    conn.outbox.extend_from_slice(&bytes[..bytes.len() / 2]);
                }
                conn.server_closed = true;
                conn.close_after_flush = true;
            }
            Some(TransportFault::SlowLoris) => {
                report.chaos_injected += 1;
                intertubes_obs::counter("net.chaos_slow_loris", 1);
                conn.chunk = Some(LORIS_CHUNK);
                queue_frame(conn, reply);
            }
            None => queue_frame(conn, reply),
        }
    }
}

/// Encodes and queues a frame on a connection's outbox. Frames the server
/// itself builds always encode (ids come from decoded frames, payloads
/// from the engine); an encode failure is degraded to a dropped reply
/// rather than a panic.
fn queue_frame(conn: &mut Conn, frame: &Frame) {
    if let Ok(bytes) = crate::wire::encode_frame(frame) {
        conn.outbox.extend_from_slice(&bytes);
    }
}

/// A server running on a background thread (in-process tests, examples).
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<io::Result<ServerReport>>,
}

impl RunningServer {
    /// The bound address (ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the loop to exit and joins it, returning the run's report.
    pub fn stop(self) -> io::Result<ServerReport> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}
