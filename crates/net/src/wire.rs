//! The `intertubes-wire/v1` frame codec (DESIGN.md §14.1).
//!
//! Every message on a serving connection is one length-prefixed binary
//! frame:
//!
//! ```text
//! u32 LE  body length (everything below; ≤ MAX_FRAME_LEN)
//! ─────── body ───────────────────────────────────────────
//! [0..4)   magic  b"ITWF"
//! [4..6)   version u16 LE (= 1)
//! [6]      kind u8: 0 request, 1 response, 2 error
//! [7]      tenant id length  T (bytes)
//! [8]      snapshot id length S (bytes)
//! [9..17)  request id u64 LE
//! [17..25) payload FNV-1a-64 checksum, LE
//! [25..29) payload length u32 LE
//! [29..29+T)      tenant id, UTF-8
//! [29+T..29+T+S)  snapshot id, UTF-8
//! [29+T+S..)      payload: canonical JSON (query, response, or error)
//! ```
//!
//! Decoding is staged like the snapshot container's: length sanity, magic,
//! version, kind, declared-length consistency, checksum — each failure is
//! a typed [`WireError`], rendered back to the peer as an **error frame**
//! (kind 2, payload = [`WireError::to_error_payload`]), never a hang or a
//! process exit. [`FrameReader`] handles the incremental, non-blocking
//! reassembly: feed it whatever bytes arrived, pop complete frames.

use intertubes_serve::fnv1a64;

/// Frame magic: the first four body bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"ITWF";

/// The wire protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Schema tag for manifests and documentation.
pub const WIRE_SCHEMA: &str = "intertubes-wire/v1";

/// Fixed body bytes before the variable tenant/snapshot/payload tail.
pub const HEADER_LEN: usize = 29;

/// Largest accepted frame body. A declared length beyond this is rejected
/// *from the prefix alone* — the peer cannot make the server buffer
/// gigabytes by lying about the length.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// What a frame is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A tenant's query (payload: canonical query JSON).
    Request,
    /// The engine's answer (payload: canonical response JSON).
    Response,
    /// A protocol failure report (payload: rendered [`WireError`]).
    Error,
}

impl FrameKind {
    /// The on-wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::Error => 2,
        }
    }

    /// Parses the on-wire tag.
    pub fn from_u8(tag: u8) -> Option<FrameKind> {
        match tag {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            2 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request, response, or error.
    pub kind: FrameKind,
    /// Tenant id (≤ 255 bytes).
    pub tenant: String,
    /// Snapshot id the frame routes by (≤ 255 bytes).
    pub snapshot: String,
    /// Client-assigned correlation id, echoed in the answer.
    pub request_id: u64,
    /// Canonical JSON payload.
    pub payload: String,
}

impl Frame {
    /// A request frame.
    pub fn request(tenant: &str, snapshot: &str, request_id: u64, payload: String) -> Frame {
        Frame {
            kind: FrameKind::Request,
            tenant: tenant.to_string(),
            snapshot: snapshot.to_string(),
            request_id,
            payload,
        }
    }

    /// The answer to this frame, same correlation triple.
    pub fn reply(&self, kind: FrameKind, payload: String) -> Frame {
        Frame {
            kind,
            tenant: self.tenant.clone(),
            snapshot: self.snapshot.clone(),
            request_id: self.request_id,
            payload,
        }
    }
}

/// Typed wire failure. Mirrors the snapshot container's staged
/// `SnapshotError`: every corruption mode has a distinct variant, and the
/// battery in `tests/remote.rs` exercises each one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The declared body length cannot hold a frame header, or the
    /// connection closed mid-frame.
    Truncated {
        /// Bytes a minimal frame needs.
        needed: usize,
        /// Bytes actually present/declared.
        have: usize,
    },
    /// The declared body length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        declared: usize,
        /// The acceptance ceiling.
        max: usize,
    },
    /// The first four body bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    UnknownVersion {
        /// The version the frame declared.
        found: u16,
    },
    /// The kind tag is none of request/response/error.
    BadKind {
        /// The tag the frame declared.
        found: u8,
    },
    /// The variable-length tail does not match the declared lengths.
    LengthMismatch {
        /// Body bytes the declared lengths require.
        declared: usize,
        /// Body bytes actually present.
        actual: usize,
    },
    /// Tenant or snapshot id bytes are not UTF-8.
    BadUtf8 {
        /// `"tenant"` or `"snapshot"`.
        field: &'static str,
    },
    /// The payload checksum does not match the payload bytes.
    ChecksumMismatch,
    /// A request routed to a snapshot id the registry does not serve.
    UnknownSnapshot {
        /// The id the frame asked for.
        id: String,
    },
    /// The peer closed the connection.
    Closed,
    /// A socket-level failure, rendered.
    Io(String),
}

impl WireError {
    /// Stable kebab-case label (error-frame payloads, diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::Oversized { .. } => "oversized",
            WireError::BadMagic => "bad-magic",
            WireError::UnknownVersion { .. } => "unknown-version",
            WireError::BadKind { .. } => "bad-kind",
            WireError::LengthMismatch { .. } => "length-mismatch",
            WireError::BadUtf8 { .. } => "bad-utf8",
            WireError::ChecksumMismatch => "checksum-mismatch",
            WireError::UnknownSnapshot { .. } => "unknown-snapshot",
            WireError::Closed => "closed",
            WireError::Io(_) => "io",
        }
    }

    /// Whether a client should transparently reconnect and resend: true
    /// for transport-level failures, false for protocol errors (resending
    /// a malformed frame would just fail again).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            WireError::Closed | WireError::Io(_) | WireError::Truncated { .. }
        )
    }

    /// The error-frame payload: `{"error": <label>, "detail": <display>}`.
    pub fn to_error_payload(&self) -> String {
        let label = serde_json::to_string(self.label()).unwrap_or_default();
        let detail = serde_json::to_string(&self.to_string()).unwrap_or_default();
        format!("{{\"error\":{label},\"detail\":{detail}}}")
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::Oversized { declared, max } => {
                write!(f, "oversized frame: declared {declared} bytes, max {max}")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnknownVersion { found } => {
                write!(f, "unknown wire version {found} (this build speaks {WIRE_VERSION})")
            }
            WireError::BadKind { found } => write!(f, "unknown frame kind tag {found}"),
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "frame length mismatch: fields declare {declared} bytes, body has {actual}")
            }
            WireError::BadUtf8 { field } => write!(f, "{field} id is not UTF-8"),
            WireError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            WireError::UnknownSnapshot { id } => write!(f, "unknown snapshot id {id:?}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a frame, length prefix included. Fails only when an id exceeds
/// its u8 length field or the payload exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let tenant = frame.tenant.as_bytes();
    let snapshot = frame.snapshot.as_bytes();
    if tenant.len() > u8::MAX as usize {
        return Err(WireError::BadUtf8 { field: "tenant" });
    }
    if snapshot.len() > u8::MAX as usize {
        return Err(WireError::BadUtf8 { field: "snapshot" });
    }
    let payload = frame.payload.as_bytes();
    let body_len = HEADER_LEN + tenant.len() + snapshot.len() + payload.len();
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared: body_len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(frame.kind.as_u8());
    out.push(tenant.len() as u8);
    out.push(snapshot.len() as u8);
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(tenant);
    out.extend_from_slice(snapshot);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes one frame **body** (the bytes after the length prefix).
/// Validation is staged so each corruption mode maps to its own error.
pub fn decode_frame(body: &[u8]) -> Result<Frame, WireError> {
    if body.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: body.len(),
        });
    }
    if body[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([body[4], body[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnknownVersion { found: version });
    }
    let kind = FrameKind::from_u8(body[6]).ok_or(WireError::BadKind { found: body[6] })?;
    let tenant_len = body[7] as usize;
    let snapshot_len = body[8] as usize;
    let mut id8 = [0u8; 8];
    id8.copy_from_slice(&body[9..17]);
    let request_id = u64::from_le_bytes(id8);
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&body[17..25]);
    let checksum = u64::from_le_bytes(sum8);
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&body[25..29]);
    let payload_len = u32::from_le_bytes(len4) as usize;
    let declared = HEADER_LEN + tenant_len + snapshot_len + payload_len;
    if declared != body.len() {
        return Err(WireError::LengthMismatch {
            declared,
            actual: body.len(),
        });
    }
    let tenant_end = HEADER_LEN + tenant_len;
    let snapshot_end = tenant_end + snapshot_len;
    let tenant = std::str::from_utf8(&body[HEADER_LEN..tenant_end])
        .map_err(|_| WireError::BadUtf8 { field: "tenant" })?
        .to_string();
    let snapshot = std::str::from_utf8(&body[tenant_end..snapshot_end])
        .map_err(|_| WireError::BadUtf8 { field: "snapshot" })?
        .to_string();
    let payload_bytes = &body[snapshot_end..];
    if fnv1a64(payload_bytes) != checksum {
        return Err(WireError::ChecksumMismatch);
    }
    let payload = String::from_utf8_lossy(payload_bytes).into_owned();
    Ok(Frame {
        kind,
        tenant,
        snapshot,
        request_id,
        payload,
    })
}

/// Incremental frame reassembly over a non-blocking byte stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends bytes that arrived on the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame. `Ok(None)` means more bytes are
    /// needed; an error means the stream is unsynchronized and the
    /// connection should answer with an error frame and close. The
    /// length-prefix checks fire as soon as the prefix itself is readable,
    /// so a lying peer is rejected without waiting for its body.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&self.buf[0..4]);
        let body_len = u32::from_le_bytes(len4) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                declared: body_len,
                max: MAX_FRAME_LEN,
            });
        }
        if body_len < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                have: body_len,
            });
        }
        if self.buf.len() < 4 + body_len {
            return Ok(None);
        }
        let frame = decode_frame(&self.buf[4..4 + body_len])?;
        self.buf.drain(0..4 + body_len);
        Ok(Some(frame))
    }

    /// Reports the close of the underlying stream: a clean close between
    /// frames is `Closed`; a close mid-frame is a truncation.
    pub fn close(&self) -> WireError {
        if self.buf.is_empty() {
            WireError::Closed
        } else {
            WireError::Truncated {
                needed: 4 + HEADER_LEN,
                have: self.buf.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::request("tenant-a", "world-1", 42, "{\"TopShared\":{\"k\":4}}".into())
    }

    #[test]
    fn frames_round_trip() {
        let frame = sample();
        let bytes = encode_frame(&frame).unwrap();
        let mut reader = FrameReader::new();
        // Feed byte-by-byte: the reader reassembles across arbitrary
        // splits, as non-blocking reads deliver them.
        for b in &bytes {
            reader.feed(&[*b]);
        }
        let back = reader.next_frame().unwrap().unwrap();
        assert_eq!(back, frame);
        assert_eq!(reader.buffered(), 0);
        assert!(reader.next_frame().unwrap().is_none());
    }

    #[test]
    fn two_frames_in_one_feed_pop_in_order() {
        let a = sample();
        let mut b = sample();
        b.request_id = 43;
        let mut bytes = encode_frame(&a).unwrap();
        bytes.extend_from_slice(&encode_frame(&b).unwrap());
        let mut reader = FrameReader::new();
        reader.feed(&bytes);
        assert_eq!(reader.next_frame().unwrap().unwrap().request_id, 42);
        assert_eq!(reader.next_frame().unwrap().unwrap().request_id, 43);
    }

    #[test]
    fn every_corruption_mode_is_typed() {
        let good = encode_frame(&sample()).unwrap();

        // Truncated declared length: a prefix that cannot hold a header.
        let mut r = FrameReader::new();
        r.feed(&3u32.to_le_bytes());
        assert!(matches!(
            r.next_frame(),
            Err(WireError::Truncated { needed: HEADER_LEN, .. })
        ));

        // Oversized declared length: rejected from the prefix alone.
        let mut r = FrameReader::new();
        r.feed(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(r.next_frame(), Err(WireError::Oversized { .. })));

        // Bad magic.
        let mut bad = good.clone();
        bad[4] = b'X';
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(matches!(r.next_frame(), Err(WireError::BadMagic)));

        // Unknown version.
        let mut bad = good.clone();
        bad[8] = 9;
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(matches!(
            r.next_frame(),
            Err(WireError::UnknownVersion { found: 9 })
        ));

        // Bad kind tag.
        let mut bad = good.clone();
        bad[10] = 7;
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(matches!(r.next_frame(), Err(WireError::BadKind { found: 7 })));

        // Checksum mismatch: flip a payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(matches!(r.next_frame(), Err(WireError::ChecksumMismatch)));

        // Declared field lengths inconsistent with the body.
        let mut bad = good.clone();
        bad[11] = bad[11].wrapping_add(1); // tenant_len
        let mut r = FrameReader::new();
        r.feed(&bad);
        assert!(matches!(r.next_frame(), Err(WireError::LengthMismatch { .. })));

        // A mid-frame close is a truncation, a clean close is Closed.
        let mut r = FrameReader::new();
        r.feed(&good[..10]);
        assert!(matches!(r.close(), WireError::Truncated { .. }));
        assert!(matches!(FrameReader::new().close(), WireError::Closed));
    }

    #[test]
    fn error_payload_is_json_with_label() {
        let e = WireError::UnknownSnapshot { id: "nope".into() };
        let payload = e.to_error_payload();
        let v: serde_json::Value = serde_json::from_str(&payload).unwrap();
        assert_eq!(v["error"], "unknown-snapshot");
        assert!(v["detail"].as_str().unwrap().contains("nope"));
        assert!(!e.is_retryable());
        assert!(WireError::Closed.is_retryable());
    }

    #[test]
    fn oversized_ids_are_rejected_at_encode() {
        let mut frame = sample();
        frame.tenant = "t".repeat(300);
        assert!(matches!(
            encode_frame(&frame),
            Err(WireError::BadUtf8 { field: "tenant" })
        ));
    }
}
