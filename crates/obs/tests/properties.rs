//! The metrics-shard merge algebra (DESIGN.md §7/§8): merging per-thread
//! [`MetricsSnapshot`] shards must be associative and commutative, so the
//! merged registry — and hence the run manifest — is independent of how
//! observations were partitioned across worker threads.

use intertubes_obs::MetricsSnapshot;
use proptest::prelude::*;

/// One randomly-generated shard: a handful of counter bumps, gauge sets,
/// and histogram observations over a small shared name space (small so
/// shards collide on names, which is where merge bugs live).
fn shard_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    prop::collection::vec((0u8..3, 0usize..4, 0u64..10_000), 0..12).prop_map(|ops| {
        let names = ["alpha", "beta", "gamma", "delta"];
        let mut shard = MetricsSnapshot::new();
        // Gauge stamps must be globally ordered in real sessions; give each
        // op a distinct stamp derived from its position so generated shards
        // respect the same invariant.
        for (i, (kind, name_idx, value)) in ops.into_iter().enumerate() {
            let name = names[name_idx];
            match kind {
                0 => shard.counter_add(name, value),
                1 => shard.gauge_set(name, (i as u64) + 1, value as i64 - 5_000),
                _ => shard.histogram_observe(name, value),
            }
        }
        shard
    })
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in shard_strategy(), b in shard_strategy()) {
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        // Gauges with equal stamps across shards tie-break on value, so
        // even adversarial stamp collisions stay order-independent.
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in shard_strategy(),
        b in shard_strategy(),
        c in shard_strategy()
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_the_merge_identity(a in shard_strategy()) {
        let empty = MetricsSnapshot::new();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    #[test]
    fn merge_matches_unsharded_recording(
        values in prop::collection::vec(0u64..1_000, 1..40),
        split in 0usize..40
    ) {
        // Recording a stream into one shard equals recording a prefix and
        // suffix into two shards and merging — the sharding is invisible.
        let split = split.min(values.len());
        let mut whole = MetricsSnapshot::new();
        let mut front = MetricsSnapshot::new();
        let mut back = MetricsSnapshot::new();
        for (i, &v) in values.iter().enumerate() {
            whole.counter_add("c", v);
            whole.histogram_observe("h", v);
            let shard = if i < split { &mut front } else { &mut back };
            shard.counter_add("c", v);
            shard.histogram_observe("h", v);
        }
        prop_assert_eq!(merged(&front, &back), whole);
    }

    #[test]
    fn json_rendering_is_deterministic(a in shard_strategy(), b in shard_strategy()) {
        // Equal snapshots render to identical bytes regardless of the
        // insertion order that produced them.
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        let ab_text = serde_json::to_string(&ab.to_json()).unwrap_or_default();
        let ba_text = serde_json::to_string(&ba.to_json()).unwrap_or_default();
        prop_assert_eq!(ab_text, ba_text);
    }
}
