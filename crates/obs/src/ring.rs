//! A fixed-capacity ring buffer — the storage primitive behind the serve
//! flight recorder (DESIGN.md §13).
//!
//! [`Ring`] keeps the **last** `capacity` pushed items: once full, every
//! push overwrites the oldest element and bumps the dropped counter, so
//! the memory bound holds no matter how long a serving session runs.
//! Iteration is always oldest → newest, which is what makes a dump of the
//! ring deterministic for a deterministic push sequence — the ring never
//! exposes its internal wrap point.

/// A bounded buffer retaining the most recent `capacity` items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring<T> {
    /// Backing storage, at most `capacity` long.
    items: Vec<T>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    /// Upper bound on retained items (≥ 1).
    capacity: usize,
    /// Items overwritten because the ring was full.
    dropped: u64,
    /// Items ever pushed (`len() + dropped`).
    pushed: u64,
}

impl<T> Ring<T> {
    /// An empty ring retaining at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let capacity = capacity.max(1);
        Ring {
            items: Vec::with_capacity(capacity.min(1024)),
            head: 0,
            capacity,
            dropped: 0,
            pushed: 0,
        }
    }

    /// Appends an item, overwriting the oldest when full.
    pub fn push(&mut self, item: T) {
        self.pushed += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        self.items[self.head] = item;
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
    }

    /// Retained items (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Items ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterates retained items oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, recent) = self.items.split_at(self.head.min(self.items.len()));
        recent.iter().chain(wrapped.iter())
    }

    /// Discards every retained item (the counters keep their totals).
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_under_capacity() {
        let mut ring = Ring::new(4);
        assert!(ring.is_empty());
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = Ring::new(3);
        for i in 0..7 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.pushed(), 7);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn wrap_point_is_invisible_to_iteration() {
        // Same final window via different push counts that wrap at
        // different offsets.
        let mut a = Ring::new(4);
        for i in 0..9 {
            a.push(i % 4);
        }
        let mut b = Ring::new(4);
        for i in 4..9 {
            b.push(i % 4);
        }
        assert_eq!(
            a.iter().copied().collect::<Vec<_>>(),
            b.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = Ring::new(0);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec!["b"]);
    }

    #[test]
    fn clear_resets_contents_but_not_counters() {
        let mut ring = Ring::new(2);
        for i in 0..5 {
            ring.push(i);
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 3);
        ring.push(9);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
