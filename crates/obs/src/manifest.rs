//! Run manifests: the machine-readable record tying a run's results to
//! its configuration, per-stage timings, and metrics.
//!
//! A manifest is a plain `serde_json::Value` with a fixed schema
//! ([`MANIFEST_SCHEMA`]) so downstream tooling — `scripts/trace_check.sh`,
//! the CI trace gate, the determinism battery — can consume it without
//! this crate's types. [`canonicalize`] strips everything wall-clock- or
//! environment-dependent; two runs of the same configuration must produce
//! byte-identical canonical manifests at any thread count (tested by
//! `tests/determinism.rs`).

use serde_json::{Map, Number, Value};

use crate::{EventKind, FieldValue, RunRecord, StageOutcome, StageRecord};

/// Schema identifier stamped into every manifest.
pub const MANIFEST_SCHEMA: &str = "intertubes-obs/v1";

/// Keys holding wall-clock or host-dependent data, removed (recursively
/// for `wall_ms`/`t_ms`, at top level for `environment`) by
/// [`canonicalize`].
const TIMING_KEYS: [&str; 2] = ["wall_ms", "t_ms"];

/// Run identity: what was asked of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// The CLI command (or test harness name) that drove the run.
    pub command: String,
    /// World seed.
    pub seed: u64,
    /// Degradation policy label (`"strict"` / `"lenient"`).
    pub policy: String,
    /// The fault plan document, if faults were injected.
    pub fault_plan: Option<Value>,
    /// Worker thread count the run resolved to (environment section —
    /// stripped from canonical manifests).
    pub threads: usize,
    /// Process exit status the run ended with.
    pub exit_status: i32,
    /// Serving health summary (final state plus transition trace), when
    /// the run exercised the serving layer; `None` elsewhere.
    pub health: Option<Value>,
    /// The canonicalized serving count plane (`intertubes-stats/v1`
    /// counts, timing stripped), when the run served queries; `None`
    /// elsewhere. Embedding only the canonical form keeps the manifest
    /// itself byte-comparable across thread counts and cache modes.
    pub serve_stats: Option<Value>,
    /// Per-tenant admission aggregates (`submitted` / `admitted` /
    /// `quota_rejected` counts keyed by tenant id), when the run fronted
    /// the remote serving transport; `None` elsewhere. Counts only — like
    /// `serve_stats`, nothing wall-clock-dependent belongs here.
    pub tenants: Option<Value>,
}

/// The headline topology counts (§2 of the paper: the reference
/// reconstruction reports 273 nodes / 2411 links / 542 conduits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyCounts {
    /// City-level nodes in the constructed map.
    pub nodes: usize,
    /// Link (tenancy) total.
    pub links: usize,
    /// Physical conduits.
    pub conduits: usize,
    /// Conduits with documentary validation.
    pub validated_conduits: usize,
}

fn uint(v: u64) -> Value {
    Value::Number(Number::UInt(v))
}

fn float(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

fn field_value_json(v: &FieldValue) -> Value {
    match v {
        FieldValue::Str(s) => Value::String(s.clone()),
        FieldValue::U64(n) => uint(*n),
        FieldValue::I64(n) => Value::Number(Number::Int(*n)),
        FieldValue::F64(n) => float(*n),
        FieldValue::Bool(b) => Value::Bool(*b),
    }
}

/// Aggregates repeated completions of the same stage name.
fn aggregate_stages(stages: &[StageRecord]) -> Value {
    use std::collections::BTreeMap;
    struct Agg {
        calls: u64,
        wall_ms: f64,
        items: BTreeMap<String, u64>,
        outcome: StageOutcome,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for s in stages {
        let agg = by_name.entry(&s.name).or_insert(Agg {
            calls: 0,
            wall_ms: 0.0,
            items: BTreeMap::new(),
            outcome: StageOutcome::Ok,
        });
        agg.calls += 1;
        agg.wall_ms += s.wall_ms;
        for (key, count) in &s.items {
            *agg.items.entry(key.clone()).or_insert(0) += count;
        }
        // Worst outcome wins (Ok < Degraded < Failed).
        if s.outcome > agg.outcome {
            agg.outcome = s.outcome;
        }
    }
    let mut out = Map::new();
    for (name, agg) in by_name {
        let mut stage = Map::new();
        stage.insert("calls".to_string(), uint(agg.calls));
        stage.insert(
            "outcome".to_string(),
            Value::String(agg.outcome.label().to_string()),
        );
        let mut items = Map::new();
        for (key, count) in agg.items {
            items.insert(key, uint(count));
        }
        stage.insert("items".to_string(), Value::Object(items));
        stage.insert("wall_ms".to_string(), float(round3(agg.wall_ms)));
        out.insert(name.to_string(), Value::Object(stage));
    }
    Value::Object(out)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Builds the end-of-run manifest from a finished session's record.
pub fn build_manifest(
    info: &RunInfo,
    record: &RunRecord,
    topology: Option<&TopologyCounts>,
) -> Value {
    let mut run = Map::new();
    run.insert("command".to_string(), Value::String(info.command.clone()));
    run.insert("seed".to_string(), uint(info.seed));
    run.insert("policy".to_string(), Value::String(info.policy.clone()));
    run.insert(
        "fault_plan".to_string(),
        info.fault_plan.clone().unwrap_or(Value::Null),
    );
    run.insert(
        "exit_status".to_string(),
        Value::Number(Number::Int(info.exit_status as i64)),
    );
    run.insert(
        "health".to_string(),
        info.health.clone().unwrap_or(Value::Null),
    );
    run.insert(
        "serve_stats".to_string(),
        info.serve_stats.clone().unwrap_or(Value::Null),
    );
    run.insert(
        "tenants".to_string(),
        info.tenants.clone().unwrap_or(Value::Null),
    );

    let mut environment = Map::new();
    environment.insert("threads".to_string(), uint(info.threads as u64));

    let mut by_level: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in &record.events {
        if e.kind == EventKind::Event {
            *by_level.entry(e.level.as_str()).or_insert(0) += 1;
        }
    }
    let mut levels = Map::new();
    let mut events_total = 0;
    for (level, n) in by_level {
        levels.insert(level.to_string(), uint(n));
        events_total += n;
    }
    let mut events = Map::new();
    events.insert("total".to_string(), uint(events_total));
    events.insert("by_level".to_string(), Value::Object(levels));

    let topology_json = match topology {
        Some(t) => {
            let mut obj = Map::new();
            obj.insert("nodes".to_string(), uint(t.nodes as u64));
            obj.insert("links".to_string(), uint(t.links as u64));
            obj.insert("conduits".to_string(), uint(t.conduits as u64));
            obj.insert(
                "validated_conduits".to_string(),
                uint(t.validated_conduits as u64),
            );
            Value::Object(obj)
        }
        None => Value::Null,
    };

    let mut manifest = Map::new();
    manifest.insert(
        "schema".to_string(),
        Value::String(MANIFEST_SCHEMA.to_string()),
    );
    manifest.insert("run".to_string(), Value::Object(run));
    manifest.insert("environment".to_string(), Value::Object(environment));
    manifest.insert("stages".to_string(), aggregate_stages(&record.stages));
    manifest.insert("metrics".to_string(), record.metrics.to_json());
    manifest.insert("topology".to_string(), topology_json);
    manifest.insert("events".to_string(), Value::Object(events));
    Value::Object(manifest)
}

/// Strips wall-clock (`wall_ms`, `t_ms`, recursively) and environment
/// (top-level `environment`) fields, returning the comparison form of a
/// manifest: two runs of the same configuration must canonicalize to
/// byte-identical JSON at any thread count.
pub fn canonicalize(manifest: &Value) -> Value {
    fn strip(v: &Value) -> Value {
        match v {
            Value::Object(map) => {
                let mut out = Map::new();
                for (key, value) in map.iter() {
                    if TIMING_KEYS.contains(&key.as_str()) {
                        continue;
                    }
                    out.insert(key.clone(), strip(value));
                }
                Value::Object(out)
            }
            Value::Array(items) => Value::Array(items.iter().map(strip).collect()),
            other => other.clone(),
        }
    }
    let stripped = strip(manifest);
    match stripped {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| k.as_str() != "environment")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        other => other,
    }
}

/// Renders a finished session as JSON Lines: one line per log entry, the
/// manifest as the final line (`"type": "manifest"`).
pub fn record_to_jsonl(record: &RunRecord, manifest: &Value) -> String {
    let mut out = String::new();
    for e in &record.events {
        let mut obj = Map::new();
        obj.insert(
            "type".to_string(),
            Value::String(e.kind.label().to_string()),
        );
        obj.insert("seq".to_string(), uint(e.seq));
        obj.insert("t_ms".to_string(), float(round3(e.t_ms)));
        match e.kind {
            EventKind::SpanOpen | EventKind::SpanClose => {
                obj.insert("span".to_string(), Value::String(e.message.clone()));
                obj.insert(
                    "parent".to_string(),
                    e.span
                        .as_ref()
                        .map(|s| Value::String(s.clone()))
                        .unwrap_or(Value::Null),
                );
            }
            EventKind::Event => {
                obj.insert(
                    "level".to_string(),
                    Value::String(e.level.as_str().to_string()),
                );
                obj.insert("target".to_string(), Value::String(e.target.clone()));
                obj.insert(
                    "span".to_string(),
                    e.span
                        .as_ref()
                        .map(|s| Value::String(s.clone()))
                        .unwrap_or(Value::Null),
                );
                obj.insert("message".to_string(), Value::String(e.message.clone()));
            }
        }
        if !e.fields.is_empty() {
            let mut fields = Map::new();
            for (key, value) in &e.fields {
                fields.insert(key.clone(), field_value_json(value));
            }
            obj.insert("fields".to_string(), Value::Object(fields));
        }
        out.push_str(&to_line(&Value::Object(obj)));
        out.push('\n');
    }
    let mut last = Map::new();
    last.insert("type".to_string(), Value::String("manifest".to_string()));
    if let Value::Object(m) = manifest {
        for (key, value) in m.iter() {
            last.insert(key.clone(), value.clone());
        }
    }
    out.push_str(&to_line(&Value::Object(last)));
    out.push('\n');
    out
}

fn to_line(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{}".to_string())
}

/// Validates a manifest against the [`MANIFEST_SCHEMA`] shape, plus a
/// caller-supplied list of stage names that must be present (the CI trace
/// gate requires every end-to-end stage). Returns every problem found.
pub fn validate_manifest(manifest: &Value, required_stages: &[&str]) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut problem = |msg: String| problems.push(msg);

    if manifest.get("schema").and_then(Value::as_str) != Some(MANIFEST_SCHEMA) {
        problem(format!("schema is not {MANIFEST_SCHEMA:?}"));
    }

    match manifest.get("run") {
        Some(run) if run.is_object() => {
            if run.get("command").and_then(Value::as_str).is_none() {
                problem("run.command missing or not a string".to_string());
            }
            if run.get("seed").and_then(Value::as_u64).is_none() {
                problem("run.seed missing or not an unsigned integer".to_string());
            }
            match run.get("policy").and_then(Value::as_str) {
                Some("strict") | Some("lenient") => {}
                other => problem(format!("run.policy invalid: {other:?}")),
            }
            if run.get("exit_status").and_then(Value::as_i64).is_none() {
                problem("run.exit_status missing or not an integer".to_string());
            }
            match run.get("fault_plan") {
                Some(v) if v.is_null() || v.is_object() => {}
                other => problem(format!("run.fault_plan invalid: {other:?}")),
            }
            match run.get("health") {
                Some(v) if v.is_null() || v.is_object() => {}
                other => problem(format!("run.health invalid: {other:?}")),
            }
            match run.get("serve_stats") {
                // Absent is tolerated for pre-§13 traces; when present it
                // must be the canonical count-plane object (or null).
                None | Some(Value::Null) => {}
                Some(v) if v.is_object() => {
                    if v.get("counts").and_then(Value::as_object).is_none() {
                        problem("run.serve_stats.counts missing or not an object".to_string());
                    }
                    if v.get("timing").is_some() {
                        problem(
                            "run.serve_stats carries a timing plane — only the \
                             canonical count plane belongs in a manifest"
                                .to_string(),
                        );
                    }
                }
                other => problem(format!("run.serve_stats invalid: {other:?}")),
            }
            match run.get("tenants") {
                // Absent is tolerated for pre-§14 traces; when present it
                // must map tenant ids to objects of unsigned counts.
                None | Some(Value::Null) => {}
                Some(Value::Object(tenants)) => {
                    for (tenant, counts) in tenants.iter() {
                        match counts.as_object() {
                            Some(counts) => {
                                for (key, count) in counts.iter() {
                                    if count.as_u64().is_none() {
                                        problem(format!(
                                            "run.tenants[{tenant}].{key} is not an \
                                             unsigned integer"
                                        ));
                                    }
                                }
                            }
                            None => problem(format!(
                                "run.tenants[{tenant}] is not an object"
                            )),
                        }
                    }
                }
                other => problem(format!("run.tenants invalid: {other:?}")),
            }
        }
        _ => problem("run section missing".to_string()),
    }

    match manifest
        .get("environment")
        .and_then(|e| e.get("threads"))
        .and_then(Value::as_u64)
    {
        Some(n) if n >= 1 => {}
        _ => problem("environment.threads missing or < 1".to_string()),
    }

    match manifest.get("stages").and_then(Value::as_object) {
        Some(stages) => {
            if stages.is_empty() {
                problem("stages section is empty".to_string());
            }
            for (name, stage) in stages.iter() {
                if stage.get("calls").and_then(Value::as_u64).unwrap_or(0) < 1 {
                    problem(format!("stage {name}: calls missing or < 1"));
                }
                match stage.get("outcome").and_then(Value::as_str) {
                    Some("ok") | Some("degraded") | Some("failed") => {}
                    other => problem(format!("stage {name}: outcome invalid: {other:?}")),
                }
                match stage.get("wall_ms").and_then(Value::as_f64) {
                    Some(ms) if ms >= 0.0 => {}
                    _ => problem(format!("stage {name}: wall_ms missing or negative")),
                }
                match stage.get("items").and_then(Value::as_object) {
                    Some(items) => {
                        for (key, count) in items.iter() {
                            if count.as_u64().is_none() {
                                problem(format!(
                                    "stage {name}: item {key} is not an unsigned integer"
                                ));
                            }
                        }
                    }
                    None => problem(format!("stage {name}: items section missing")),
                }
            }
            for required in required_stages {
                if stages.get(required).is_none() {
                    problem(format!("required stage missing: {required}"));
                }
            }
        }
        None => problem("stages section missing".to_string()),
    }

    match manifest.get("metrics") {
        Some(metrics) => {
            for section in ["counters", "gauges", "histograms"] {
                if metrics.get(section).and_then(Value::as_object).is_none() {
                    problem(format!("metrics.{section} missing or not an object"));
                }
            }
        }
        None => problem("metrics section missing".to_string()),
    }

    match manifest.get("topology") {
        Some(Value::Null) | None => {}
        Some(t) => {
            let nodes = t.get("nodes").and_then(Value::as_u64);
            let links = t.get("links").and_then(Value::as_u64);
            let conduits = t.get("conduits").and_then(Value::as_u64);
            let validated = t.get("validated_conduits").and_then(Value::as_u64);
            match (nodes, links, conduits, validated) {
                (Some(n), Some(l), Some(c), Some(v)) => {
                    if n == 0 || l == 0 || c == 0 {
                        problem("topology counts must be positive".to_string());
                    }
                    if v > c {
                        problem("topology.validated_conduits exceeds conduits".to_string());
                    }
                }
                _ => problem("topology counts missing or non-integer".to_string()),
            }
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn sample_record() -> RunRecord {
        let mut record = RunRecord::default();
        record.stages.push(StageRecord {
            name: "map.step1".to_string(),
            parent: Some("study.build".to_string()),
            wall_ms: 12.5,
            items: vec![("conduits".to_string(), 512)],
            outcome: StageOutcome::Ok,
        });
        record.stages.push(StageRecord {
            name: "map.step1".to_string(),
            parent: Some("study.build".to_string()),
            wall_ms: 10.0,
            items: vec![("conduits".to_string(), 30)],
            outcome: StageOutcome::Degraded,
        });
        record.events.push(EventRecord {
            seq: 0,
            t_ms: 1.25,
            kind: EventKind::Event,
            level: Level::Info,
            target: "test".to_string(),
            span: None,
            message: "hi".to_string(),
            fields: vec![("n".to_string(), FieldValue::U64(4))],
        });
        record.metrics.counter_add("c", 9);
        record
    }

    fn sample_info() -> RunInfo {
        RunInfo {
            command: "export".to_string(),
            seed: 1504,
            policy: "lenient".to_string(),
            fault_plan: None,
            threads: 8,
            exit_status: 0,
            health: None,
            serve_stats: None,
            tenants: None,
        }
    }

    use crate::EventRecord;

    #[test]
    fn manifest_aggregates_and_validates() {
        let record = sample_record();
        let manifest = build_manifest(&sample_info(), &record, Some(&TopologyCounts {
            nodes: 273,
            links: 2411,
            conduits: 542,
            validated_conduits: 400,
        }));
        validate_manifest(&manifest, &["map.step1"]).unwrap_or_else(|problems| {
            panic!("manifest should validate, problems: {problems:?}")
        });
        let stage = &manifest["stages"]["map.step1"];
        assert_eq!(stage["calls"].as_u64(), Some(2));
        assert_eq!(stage["outcome"].as_str(), Some("degraded"));
        assert_eq!(stage["items"]["conduits"].as_u64(), Some(542));
        assert_eq!(stage["wall_ms"].as_f64(), Some(22.5));
        assert_eq!(manifest["events"]["total"].as_u64(), Some(1));
    }

    #[test]
    fn validation_reports_missing_pieces() {
        let record = sample_record();
        let manifest = build_manifest(&sample_info(), &record, None);
        let problems = match validate_manifest(&manifest, &["map.step1", "overlay"]) {
            Err(problems) => problems,
            Ok(()) => panic!("overlay should be reported missing"),
        };
        assert!(problems.iter().any(|p| p.contains("overlay")));
    }

    #[test]
    fn canonical_form_strips_timing_and_environment() {
        let record = sample_record();
        let manifest = build_manifest(&sample_info(), &record, None);
        let canon = canonicalize(&manifest);
        let text = serde_json::to_string(&canon).unwrap_or_default();
        assert!(!text.contains("wall_ms"));
        assert!(!text.contains("t_ms"));
        assert!(!text.contains("environment"));
        // Non-timing content survives.
        assert_eq!(canon["stages"]["map.step1"]["calls"].as_u64(), Some(2));
        assert_eq!(canon["run"]["seed"].as_u64(), Some(1504));
    }

    #[test]
    fn canonical_form_is_thread_count_independent() {
        let record = sample_record();
        let mut info_a = sample_info();
        info_a.threads = 1;
        let mut info_b = sample_info();
        info_b.threads = 8;
        let a = canonicalize(&build_manifest(&info_a, &record, None));
        let b = canonicalize(&build_manifest(&info_b, &record, None));
        assert_eq!(
            serde_json::to_string(&a).unwrap_or_default(),
            serde_json::to_string(&b).unwrap_or_default()
        );
    }

    #[test]
    fn serve_stats_embed_only_accepts_the_canonical_count_plane() {
        let record = sample_record();
        let mut info = sample_info();

        // Canonical form (counts only) validates and survives canonicalize.
        let mut counts = Map::new();
        counts.insert("waves".to_string(), uint(3));
        let mut stats = Map::new();
        stats.insert("counts".to_string(), Value::Object(counts));
        info.serve_stats = Some(Value::Object(stats.clone()));
        let manifest = build_manifest(&info, &record, None);
        validate_manifest(&manifest, &[]).unwrap_or_else(|problems| {
            panic!("canonical serve_stats should validate: {problems:?}")
        });
        let canon = canonicalize(&manifest);
        assert_eq!(
            canon["run"]["serve_stats"]["counts"]["waves"].as_u64(),
            Some(3)
        );

        // A timing plane in the manifest is a schema violation.
        stats.insert("timing".to_string(), Value::Object(Map::new()));
        info.serve_stats = Some(Value::Object(stats));
        let manifest = build_manifest(&info, &record, None);
        let problems = match validate_manifest(&manifest, &[]) {
            Err(problems) => problems,
            Ok(()) => panic!("a timing plane must be rejected"),
        };
        assert!(problems.iter().any(|p| p.contains("timing")));
    }

    #[test]
    fn tenants_embed_accepts_count_maps_and_rejects_junk() {
        let record = sample_record();
        let mut info = sample_info();

        // A map of tenant → unsigned counts validates and survives
        // canonicalization (it is count-plane data, like serve_stats).
        let mut counts = Map::new();
        counts.insert("submitted".to_string(), uint(10));
        counts.insert("quota_rejected".to_string(), uint(4));
        let mut tenants = Map::new();
        tenants.insert("acme".to_string(), Value::Object(counts));
        info.tenants = Some(Value::Object(tenants));
        let manifest = build_manifest(&info, &record, None);
        validate_manifest(&manifest, &[]).unwrap_or_else(|problems| {
            panic!("tenant counts should validate: {problems:?}")
        });
        let canon = canonicalize(&manifest);
        assert_eq!(
            canon["run"]["tenants"]["acme"]["quota_rejected"].as_u64(),
            Some(4)
        );

        // Non-integer counts are a schema violation.
        let mut bad = Map::new();
        bad.insert(
            "acme".to_string(),
            serde_json::json!({ "submitted": "lots" }),
        );
        info.tenants = Some(Value::Object(bad));
        let manifest = build_manifest(&info, &record, None);
        let problems = match validate_manifest(&manifest, &[]) {
            Err(problems) => problems,
            Ok(()) => panic!("string counts must be rejected"),
        };
        assert!(problems.iter().any(|p| p.contains("tenants")));
    }

    #[test]
    fn jsonl_has_one_line_per_entry_plus_manifest() {
        let record = sample_record();
        let manifest = build_manifest(&sample_info(), &record, None);
        let jsonl = record_to_jsonl(&record, &manifest);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), record.events.len() + 1);
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap_or_else(|e| {
                panic!("line should parse as JSON: {e:?}\n{line}")
            });
            assert!(v.get("type").and_then(Value::as_str).is_some());
        }
        let last: Value = serde_json::from_str(lines[lines.len() - 1]).unwrap_or_default();
        assert_eq!(last["type"].as_str(), Some("manifest"));
        assert_eq!(last["schema"].as_str(), Some(MANIFEST_SCHEMA));
    }
}
