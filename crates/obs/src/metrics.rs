//! The metrics registry's value types and their merge algebra.
//!
//! Worker threads accumulate into private [`MetricsSnapshot`] shards; at
//! session end the shards are merged into one snapshot. The merge is
//! **associative and commutative** (asserted by the property suite in
//! `tests/properties.rs`), so the merged snapshot is independent of how
//! work was partitioned across threads — the same algebraic contract the
//! parallel determinism battery (DESIGN.md §7) imposes on overlay shards
//! and degradation reports, extended here to observability aggregates.
//!
//! The arithmetic is integer-only by design: counters and histogram
//! sums are `u64`, so no merge order can introduce floating-point
//! reassociation drift into a manifest.

use std::collections::BTreeMap;

use serde_json::{Map, Number, Value};

/// Number of power-of-two histogram buckets (`u64` values need ≤ 64).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A set-style metric. Merging keeps the *latest* write, where "latest"
/// is decided by a session-scoped monotonic stamp — a max operation, hence
/// associative and commutative (ties break toward the larger value).
///
/// Gauges must only be set from serial code (stage boundaries on the
/// driving thread); a gauge raced from worker threads would merge
/// deterministically per-partition but carry a partition-dependent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    /// Session-scoped write stamp (higher = later).
    pub stamp: u64,
    /// The recorded value.
    pub value: i64,
}

impl Gauge {
    /// Merges another gauge observation into this one (max by
    /// `(stamp, value)`).
    pub fn merge(&mut self, other: Gauge) {
        if (other.stamp, other.value) > (self.stamp, self.value) {
            *self = other;
        }
    }
}

/// A power-of-two-bucketed distribution of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
    /// `buckets[i]` counts observations `v` with `bit_len(v) == i`
    /// (so bucket 0 is exactly `v == 0`, bucket `i` spans
    /// `[2^(i-1), 2^i - 1]`).
    pub buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
        }
    }
}

impl Histogram {
    /// The bucket index for an observation.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The value range `[lo, hi]` a bucket covers (bucket 0 is exactly 0,
    /// bucket `i` spans `[2^(i-1), 2^i - 1]`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            return (0, 0);
        }
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by **deterministic bucket
    /// interpolation**: the rank's bucket is located by cumulative count,
    /// then the observations inside it are assumed evenly spread across
    /// the bucket's value range and the rank's offset picks a point with
    /// integer arithmetic only. The result is clamped to the observed
    /// `[min, max]`, and identical for any merge tree over the same
    /// observations — quantiles inherit the merge algebra's determinism
    /// even though they are derived, not stored.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64)
            .min(self.count - 1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < seen + c {
                let (lo, hi) = Self::bucket_bounds(i);
                let offset = rank - seen;
                let width = hi - lo;
                let interpolated = if c > 1 {
                    // Exact integer interpolation, widened so no width ×
                    // offset product can overflow.
                    lo + ((width as u128 * offset as u128) / (c - 1) as u128) as u64
                } else {
                    lo + width / 2
                };
                return interpolated.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Folds another histogram into this one (bucket-wise sums, min/max).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// JSON rendering: scalar stats plus the non-empty buckets as
    /// `[bit_len, count]` pairs in ascending bucket order.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("count".to_string(), Value::Number(Number::UInt(self.count)));
        obj.insert("sum".to_string(), Value::Number(Number::UInt(self.sum)));
        if self.count > 0 {
            obj.insert("min".to_string(), Value::Number(Number::UInt(self.min)));
            obj.insert("max".to_string(), Value::Number(Number::UInt(self.max)));
        }
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Value::Array(vec![
                    Value::Number(Number::UInt(i as u64)),
                    Value::Number(Number::UInt(c)),
                ])
            })
            .collect();
        obj.insert("buckets".to_string(), Value::Array(buckets));
        Value::Object(obj)
    }
}

/// One shard (or the merged total) of the metrics registry.
///
/// Keys are kept in `BTreeMap`s so every rendering is name-ordered and
/// two equal snapshots serialize to identical bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic additive totals.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point-in-time values.
    pub gauges: BTreeMap<String, Gauge>,
    /// Bucketed distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the named gauge with a write stamp.
    pub fn gauge_set(&mut self, name: &str, stamp: u64, value: i64) {
        self.gauges
            .entry(name.to_string())
            .or_insert(Gauge { stamp: 0, value: 0 })
            .merge(Gauge { stamp, value });
    }

    /// Records one observation into the named histogram.
    pub fn histogram_observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Folds another shard into this one. Associative and commutative:
    /// any merge tree over the same shards yields the same snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, g) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .or_insert(Gauge { stamp: 0, value: 0 })
                .merge(*g);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(h);
        }
    }

    /// JSON rendering with deterministic (name-ordered) keys.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (name, n) in &self.counters {
            counters.insert(name.clone(), Value::Number(Number::UInt(*n)));
        }
        let mut gauges = Map::new();
        for (name, g) in &self.gauges {
            gauges.insert(name.clone(), Value::Number(Number::Int(g.value)));
        }
        let mut histograms = Map::new();
        for (name, h) in &self.histograms {
            histograms.insert(name.clone(), h.to_json());
        }
        let mut obj = Map::new();
        obj.insert("counters".to_string(), Value::Object(counters));
        obj.insert("gauges".to_string(), Value::Object(gauges));
        obj.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_partition_the_domain() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_matches_sequential_observation() {
        let mut all = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0u64, 1, 5, 9, 1000, 77] {
            all.observe(v);
        }
        for v in [0u64, 1, 5] {
            a.observe(v);
        }
        for v in [9u64, 1000, 77] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantiles_interpolate_deterministically() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        h.observe(100);
        assert_eq!(h.quantile(0.0), 100);
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(1.0), 100);

        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 1000, 2000, 4000] {
            h.observe(v);
        }
        // Quantiles are monotone, bracketed by the observed range, and
        // exactly reproducible.
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= h.min && p99 <= h.max);
        assert_eq!(p99, h.quantile(0.99));
    }

    #[test]
    fn quantiles_are_merge_order_independent() {
        let values = [0u64, 3, 9, 17, 80, 81, 500, 7000, 7001, 65000];
        let mut whole = Histogram::default();
        for v in values {
            whole.observe(v);
        }
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(*v);
            } else {
                right.observe(*v);
            }
        }
        right.merge(&left);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(whole.quantile(q), right.quantile(q), "q={q}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        for v in [0u64, 1, 2, 3, 4, 100, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket(v));
            assert!(lo <= v && (v <= hi || Histogram::bucket(v) == HISTOGRAM_BUCKETS - 1));
        }
    }

    #[test]
    fn gauge_merge_takes_latest_stamp() {
        let mut g = Gauge { stamp: 3, value: 10 };
        g.merge(Gauge { stamp: 1, value: 99 });
        assert_eq!(g.value, 10);
        g.merge(Gauge { stamp: 4, value: -2 });
        assert_eq!(g.value, -2);
    }

    #[test]
    fn snapshot_merge_is_identity_on_empty() {
        let mut a = MetricsSnapshot::new();
        a.counter_add("x", 3);
        a.histogram_observe("h", 12);
        a.gauge_set("g", 1, 5);
        let before = a.clone();
        a.merge(&MetricsSnapshot::new());
        assert_eq!(a, before);
        let mut empty = MetricsSnapshot::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
