//! # intertubes-obs — structured tracing, metrics, and run manifests
//!
//! The observability subsystem for the InterTubes reproduction (DESIGN.md
//! §8). Three coupled facilities:
//!
//! * **Stage spans** — every pipeline stage opens a [`stage`] guard that
//!   records wall time, item counts, and an outcome, dispatched through the
//!   vendored `tracing` stub to the session recorder. Spans nest; the
//!   per-thread span stack gives events their span context.
//! * **A metrics registry** — [`counter`], [`gauge`], [`histogram`] write
//!   into per-thread [`MetricsSnapshot`] shards that merge associatively
//!   and commutatively at session end, extending the serial==parallel
//!   determinism contract (DESIGN.md §7) to observability aggregates.
//! * **A structured event log and run manifest** — [`Session::finish`]
//!   returns a [`RunRecord`] (ordered events, completed stages, merged
//!   metrics) from which [`build_manifest`] derives the end-of-run
//!   manifest; [`canonicalize`] strips the wall-clock and environment
//!   fields so manifests can be compared byte-for-byte across thread
//!   counts.
//!
//! ## Sessions
//!
//! Recording is scoped: nothing is captured until a [`Session`] begins,
//! and instrumented library code is a cheap no-op outside one. Sessions
//! are process-exclusive (a global lock serializes them), which is what
//! lets the determinism battery compare runs without cross-test bleed.
//!
//! ```
//! use intertubes_obs as obs;
//!
//! let session = obs::Session::begin(obs::ObsConfig::default());
//! {
//!     let mut span = obs::stage("demo.stage");
//!     obs::counter("demo.widgets", 3);
//!     span.items("widgets", 3);
//! }
//! let record = session.finish();
//! assert_eq!(record.stages.len(), 1);
//! assert_eq!(record.metrics.counters["demo.widgets"], 3);
//! ```
//!
//! The `INTERTUBES_LOG` environment variable (error/warn/info/debug/trace)
//! sets the default capture-and-echo threshold; see
//! [`ObsConfig::from_env`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manifest;
mod metrics;
mod ring;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use manifest::{
    build_manifest, canonicalize, record_to_jsonl, validate_manifest, RunInfo, TopologyCounts,
    MANIFEST_SCHEMA,
};
pub use metrics::{Gauge, Histogram, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use ring::Ring;
pub use tracing::{FieldValue, Level};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// What happened inside one structured log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A stage span was entered.
    SpanOpen,
    /// A stage span exited (its summary lives in [`StageRecord`]).
    SpanClose,
    /// A free-standing structured event.
    Event,
}

impl EventKind {
    /// Stable label used as the JSONL `type` field.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::Event => "event",
        }
    }
}

/// One entry of the ordered structured log.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Position in the log (0-based, session-scoped).
    pub seq: u64,
    /// Milliseconds since the session began (wall clock; stripped by
    /// [`canonicalize`]).
    pub t_ms: f64,
    /// Entry kind.
    pub kind: EventKind,
    /// Severity (span entries are [`Level::Debug`]).
    pub level: Level,
    /// Module/component that emitted the entry.
    pub target: String,
    /// Innermost enclosing span on the emitting thread, if any.
    pub span: Option<String>,
    /// Human-readable message (span name for span entries).
    pub message: String,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// How a completed stage ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageOutcome {
    /// The stage completed cleanly.
    Ok,
    /// The stage completed but absorbed degraded input.
    Degraded,
    /// The stage failed (strict-mode abort path).
    Failed,
}

impl StageOutcome {
    /// Stable label (`"ok"` / `"degraded"` / `"failed"`).
    pub fn label(self) -> &'static str {
        match self {
            StageOutcome::Ok => "ok",
            StageOutcome::Degraded => "degraded",
            StageOutcome::Failed => "failed",
        }
    }
}

/// The summary of one completed stage span.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name (e.g. `"map.step3"`).
    pub name: String,
    /// Enclosing span at entry, if any.
    pub parent: Option<String>,
    /// Wall time inside the span, milliseconds (stripped by
    /// [`canonicalize`]).
    pub wall_ms: f64,
    /// Item counts attached via [`StageGuard::items`], in emission order.
    pub items: Vec<(String, u64)>,
    /// How the stage ended.
    pub outcome: StageOutcome,
}

/// Everything one session captured, in deterministic order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// The ordered structured log (span opens/closes and events).
    pub events: Vec<EventRecord>,
    /// Completed stages, in completion order.
    pub stages: Vec<StageRecord>,
    /// The merged metrics registry.
    pub metrics: MetricsSnapshot,
}

impl RunRecord {
    /// Total wall milliseconds across all completions of `stage`.
    pub fn stage_wall_ms(&self, stage: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut seen = false;
        for s in self.stages.iter().filter(|s| s.name == stage) {
            total += s.wall_ms;
            seen = true;
        }
        seen.then_some(total)
    }

    /// Names of recorded stages, deduplicated, in first-completion order.
    pub fn stage_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.stages {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }
}

// ---------------------------------------------------------------------------
// Session & recorder
// ---------------------------------------------------------------------------

/// Session parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capture-and-echo threshold: events with `level <= filter` are
    /// recorded (and echoed when `echo` is set).
    pub level: Level,
    /// Render captured events to stderr as they arrive (the CLI's
    /// human-readable log; tests leave it off).
    pub echo: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            level: Level::Info,
            echo: false,
        }
    }
}

impl ObsConfig {
    /// Reads the threshold from `INTERTUBES_LOG` (default `info`;
    /// unknown names fall back to `info`).
    pub fn from_env() -> Self {
        let level = std::env::var("INTERTUBES_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info);
        ObsConfig { level, echo: false }
    }

    /// Returns the config with stderr echoing enabled.
    pub fn with_echo(mut self) -> Self {
        self.echo = true;
        self
    }
}

/// Serializes sessions: at most one recorder exists per process, so
/// concurrent tests cannot bleed spans or metrics into each other's
/// manifests.
static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// Recorder generation counter; thread-local metric shards are lazily
/// re-bound when the generation moves on.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The active recorder (metrics side; the tracing side is the stub's
/// subscriber slot, holding the same `Arc`).
static RECORDER: std::sync::RwLock<Option<Arc<Recorder>>> = std::sync::RwLock::new(None);

thread_local! {
    /// This thread's shard of the active recorder's metrics registry.
    static SHARD: RefCell<Option<(u64, Arc<Mutex<MetricsSnapshot>>)>> = const { RefCell::new(None) };
    /// This thread's stack of entered span names.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct Recorder {
    generation: u64,
    filter: Level,
    echo: bool,
    start: Instant,
    log: Mutex<Vec<EventRecord>>,
    stages: Mutex<Vec<StageRecord>>,
    shards: Mutex<Vec<Arc<Mutex<MetricsSnapshot>>>>,
    gauge_stamp: AtomicU64,
}

impl Recorder {
    fn new(cfg: ObsConfig) -> Recorder {
        Recorder {
            generation: GENERATION.fetch_add(1, Ordering::SeqCst) + 1,
            filter: cfg.level,
            echo: cfg.echo,
            start: Instant::now(),
            log: Mutex::new(Vec::new()),
            stages: Mutex::new(Vec::new()),
            shards: Mutex::new(Vec::new()),
            gauge_stamp: AtomicU64::new(0),
        }
    }

    fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    fn push_log(&self, mut entry: EventRecord) {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        entry.seq = log.len() as u64;
        log.push(entry);
    }

    /// The calling thread's current innermost span, if any.
    fn current_span() -> Option<String> {
        SPAN_STACK.with(|s| s.borrow().last().cloned())
    }

    fn shard(&self) -> Arc<Mutex<MetricsSnapshot>> {
        SHARD.with(|slot| {
            let mut slot = slot.borrow_mut();
            match slot.as_ref() {
                Some((generation, shard)) if *generation == self.generation => Arc::clone(shard),
                _ => {
                    let shard = Arc::new(Mutex::new(MetricsSnapshot::new()));
                    self.shards
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(Arc::clone(&shard));
                    *slot = Some((self.generation, Arc::clone(&shard)));
                    shard
                }
            }
        })
    }

    fn echo_line(&self, level: Level, span: Option<&str>, message: &str) {
        if !self.echo || level > self.filter {
            return;
        }
        match span {
            Some(span) => eprintln!("{:>5} [{span}] {message}", level.as_str()),
            None => eprintln!("{:>5} {message}", level.as_str()),
        }
    }
}

impl tracing::Subscriber for Recorder {
    fn enabled(&self, level: Level) -> bool {
        level <= self.filter
    }

    fn span_enter(&self, name: &str) {
        let parent = Self::current_span();
        SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        self.push_log(EventRecord {
            seq: 0,
            t_ms: self.elapsed_ms(),
            kind: EventKind::SpanOpen,
            level: Level::Debug,
            target: "obs".to_string(),
            span: parent,
            message: name.to_string(),
            fields: Vec::new(),
        });
    }

    fn span_exit(&self, name: &str, fields: &[(&str, FieldValue)]) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last().map(String::as_str) == Some(name) {
                stack.pop();
            }
        });
        let parent = Self::current_span();
        let mut wall_ms = 0.0;
        let mut outcome = StageOutcome::Ok;
        let mut items = Vec::new();
        for (key, value) in fields {
            match (*key, value) {
                ("wall_ms", FieldValue::F64(v)) => wall_ms = *v,
                ("outcome", FieldValue::Str(s)) => {
                    outcome = match s.as_str() {
                        "degraded" => StageOutcome::Degraded,
                        "failed" => StageOutcome::Failed,
                        _ => StageOutcome::Ok,
                    }
                }
                (key, FieldValue::U64(v)) => items.push((key.to_string(), *v)),
                _ => {}
            }
        }
        self.echo_line(
            Level::Debug,
            parent.as_deref(),
            &format!(
                "stage {name}: {} in {wall_ms:.1} ms{}",
                outcome.label(),
                items
                    .iter()
                    .map(|(k, v)| format!(" {k}={v}"))
                    .collect::<String>()
            ),
        );
        self.push_log(EventRecord {
            seq: 0,
            t_ms: self.elapsed_ms(),
            kind: EventKind::SpanClose,
            level: Level::Debug,
            target: "obs".to_string(),
            span: parent.clone(),
            message: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        self.stages
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(StageRecord {
                name: name.to_string(),
                parent,
                wall_ms,
                items,
                outcome,
            });
    }

    fn event(&self, level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
        if level > self.filter {
            return;
        }
        let span = Self::current_span();
        self.echo_line(
            level,
            span.as_deref(),
            &format!(
                "{message}{}",
                fields
                    .iter()
                    .map(|(k, v)| format!(" {k}={v}"))
                    .collect::<String>()
            ),
        );
        self.push_log(EventRecord {
            seq: 0,
            t_ms: self.elapsed_ms(),
            kind: EventKind::Event,
            level,
            target: target.to_string(),
            span,
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }
}

/// An exclusive recording session. Holds the process session lock for its
/// lifetime; [`Session::finish`] uninstalls the recorder and returns
/// everything it captured.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
    recorder: Arc<Recorder>,
}

impl Session {
    /// Begins recording. Blocks until any other session in the process
    /// finishes.
    pub fn begin(cfg: ObsConfig) -> Session {
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let recorder = Arc::new(Recorder::new(cfg));
        *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&recorder));
        tracing::set_subscriber(recorder.clone());
        Session {
            _guard: guard,
            recorder,
        }
    }

    /// Stops recording and returns the captured [`RunRecord`].
    pub fn finish(self) -> RunRecord {
        tracing::clear_subscriber();
        *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = None;
        let recorder = self.recorder;
        let events = std::mem::take(&mut *recorder.log.lock().unwrap_or_else(|e| e.into_inner()));
        let stages =
            std::mem::take(&mut *recorder.stages.lock().unwrap_or_else(|e| e.into_inner()));
        let mut metrics = MetricsSnapshot::new();
        for shard in recorder
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            metrics.merge(&shard.lock().unwrap_or_else(|e| e.into_inner()));
        }
        RunRecord {
            events,
            stages,
            metrics,
        }
    }
}

fn with_recorder<R>(f: impl FnOnce(&Recorder) -> R) -> Option<R> {
    let slot = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    slot.as_deref().map(f)
}

/// Whether a session is currently recording.
pub fn active() -> bool {
    RECORDER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .is_some()
}

// ---------------------------------------------------------------------------
// Instrumentation API
// ---------------------------------------------------------------------------

/// Adds `n` to the named counter (no-op outside a session).
///
/// Counters are additive `u64` totals, safe to bump from worker threads:
/// the per-thread shards merge to the same total under any partitioning.
pub fn counter(name: &str, n: u64) {
    with_recorder(|r| {
        r.shard()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .counter_add(name, n);
    });
}

/// Sets the named gauge (no-op outside a session). Call from serial code
/// only — see [`Gauge`].
pub fn gauge(name: &str, value: i64) {
    with_recorder(|r| {
        let stamp = r.gauge_stamp.fetch_add(1, Ordering::SeqCst) + 1;
        r.shard()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .gauge_set(name, stamp, value);
    });
}

/// Records one observation into the named histogram (no-op outside a
/// session). Safe from worker threads, like [`counter`].
pub fn histogram(name: &str, value: u64) {
    with_recorder(|r| {
        r.shard()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .histogram_observe(name, value);
    });
}

/// Emits a structured event through the tracing dispatch (no-op outside a
/// session, filtered by the session level).
pub fn event(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    tracing::dispatch_event(level, target, message, fields);
}

/// An in-progress stage span. Records wall time on drop; attach item
/// counts with [`StageGuard::items`] and a non-ok outcome with
/// [`StageGuard::degraded`] / [`StageGuard::failed`].
#[derive(Debug)]
pub struct StageGuard {
    span: Option<tracing::Span>,
    start: Instant,
    items: Vec<(&'static str, u64)>,
    outcome: StageOutcome,
}

/// Opens a named stage span (inert outside a session).
///
/// Stage spans must be opened from serial code (the thread driving the
/// pipeline); parallel fan-outs inside a stage report through [`counter`]
/// and [`histogram`] instead.
pub fn stage(name: &str) -> StageGuard {
    let span = active().then(|| tracing::Span::enter(name));
    StageGuard {
        span,
        start: Instant::now(),
        items: Vec::new(),
        outcome: StageOutcome::Ok,
    }
}

impl StageGuard {
    /// Attaches an item count (e.g. `("conduits", 542)`) to the span.
    pub fn items(&mut self, key: &'static str, count: usize) {
        self.items.push((key, count as u64));
    }

    /// Marks the stage as completed-with-degradation.
    pub fn degraded(&mut self) {
        if self.outcome < StageOutcome::Degraded {
            self.outcome = StageOutcome::Degraded;
        }
    }

    /// Marks the stage as failed (strict-mode abort paths).
    pub fn failed(&mut self) {
        self.outcome = StageOutcome::Failed;
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(span) = self.span.take() else {
            return;
        };
        let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut fields: Vec<(&str, FieldValue)> = vec![
            ("wall_ms", FieldValue::F64(wall_ms)),
            ("outcome", FieldValue::Str(self.outcome.label().to_string())),
        ];
        for (key, count) in &self.items {
            fields.push((key, FieldValue::U64(*count)));
        }
        span.exit_with(&fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_scopes_recording() {
        assert!(!active());
        counter("outside", 1); // no-op, must not panic
        let session = Session::begin(ObsConfig::default());
        assert!(active());
        {
            let mut span = stage("outer");
            {
                let mut inner = stage("inner");
                inner.items("things", 2);
                counter("c", 5);
            }
            event(Level::Info, "test", "hello", &[("k", FieldValue::U64(1))]);
            span.items("total", 7);
            span.degraded();
        }
        let record = session.finish();
        assert!(!active());
        assert_eq!(record.stage_names(), vec!["inner", "outer"]);
        let inner = &record.stages[0];
        assert_eq!(inner.parent.as_deref(), Some("outer"));
        assert_eq!(inner.items, vec![("things".to_string(), 2)]);
        assert_eq!(inner.outcome, StageOutcome::Ok);
        let outer = &record.stages[1];
        assert_eq!(outer.parent, None);
        assert_eq!(outer.outcome, StageOutcome::Degraded);
        assert_eq!(record.metrics.counters["c"], 5);
        // log: open(outer), open(inner), close(inner), event, close(outer)
        let kinds: Vec<&str> = record.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec!["span_open", "span_open", "span_close", "event", "span_close"]
        );
        let ev = &record.events[3];
        assert_eq!(ev.span.as_deref(), Some("outer"));
        assert_eq!(ev.message, "hello");
        // seq is the log position
        assert!(record.events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
    }

    #[test]
    fn level_filter_drops_quiet_events() {
        let session = Session::begin(ObsConfig {
            level: Level::Warn,
            echo: false,
        });
        event(Level::Info, "test", "too quiet", &[]);
        event(Level::Warn, "test", "loud enough", &[]);
        let record = session.finish();
        let events: Vec<&EventRecord> = record
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Event)
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "loud enough");
    }

    #[test]
    fn stage_wall_ms_aggregates_repeat_calls() {
        let session = Session::begin(ObsConfig::default());
        for _ in 0..3 {
            let _span = stage("repeat");
        }
        let record = session.finish();
        assert_eq!(record.stages.len(), 3);
        assert!(record.stage_wall_ms("repeat").is_some());
        assert_eq!(record.stage_wall_ms("absent"), None);
    }

    #[test]
    fn worker_thread_metrics_merge_into_snapshot() {
        let session = Session::begin(ObsConfig::default());
        counter("t", 1);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    counter("t", 10);
                    histogram("h", 3);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap_or(());
        }
        let record = session.finish();
        assert_eq!(record.metrics.counters["t"], 41);
        assert_eq!(record.metrics.histograms["h"].count, 4);
    }
}
