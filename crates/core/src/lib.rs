//! # InterTubes — a reproduction of the US long-haul fiber study
//!
//! This crate is the facade over a full reproduction of *InterTubes: A
//! Study of the US Long-haul Fiber-optic Infrastructure* (SIGCOMM 2015):
//! map construction from published maps and public records (§2), geography
//! analysis (§3), shared-risk assessment (§4), and the mitigation
//! frameworks (§5).
//!
//! ## Quickstart
//!
//! ```
//! use intertubes::Study;
//!
//! // Build the reference study: synthetic world → records corpus →
//! // four-step map construction.
//! let study = Study::reference();
//! let map = &study.built.map;
//! println!(
//!     "{} nodes, {} links, {} conduits",
//!     map.nodes.len(),
//!     map.link_count(),
//!     map.conduits.len()
//! );
//!
//! // §4: how heavily is the infrastructure shared?
//! let rm = study.risk_matrix();
//! let ge2 = intertubes::risk::sharing_fraction(&rm, 2);
//! assert!(ge2 > 0.5, "most conduits are shared");
//! ```
//!
//! The sub-crates are re-exported as modules: [`geo`], [`graph`], [`atlas`],
//! [`records`], [`map`], [`probes`], [`risk`], [`mitigation`],
//! [`scenario`], [`serve`], [`net`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod study;

pub use error::IntertubesError;
pub use study::{Study, StudyConfig};

pub use intertubes_atlas as atlas;
pub use intertubes_degrade as degrade;
pub use intertubes_faults as faults;
pub use intertubes_geo as geo;
pub use intertubes_graph as graph;
pub use intertubes_map as map;
pub use intertubes_mitigation as mitigation;
pub use intertubes_net as net;
pub use intertubes_obs as obs;
pub use intertubes_parallel as parallel;
pub use intertubes_probes as probes;
pub use intertubes_records as records;
pub use intertubes_risk as risk;
pub use intertubes_scenario as scenario;
pub use intertubes_serve as serve;
