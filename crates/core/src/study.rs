//! The high-level `Study` API: one object that runs the paper end to end.

use intertubes_atlas::{PublishedMap, World, WorldConfig, MAPPED_ISPS};
use intertubes_degrade::{DegradationPolicy, DegradationReport};
use intertubes_faults::{
    inject_corpus, inject_published_maps, inject_transport, FaultPlan, InjectionLedger,
};
use intertubes_geo::OverlapParams;
use intertubes_map::{build_map_checked, BuiltMap, ColocationReport, PipelineConfig};
use intertubes_mitigation::{
    augment, heaviest_conduits, latency_study, AugmentationConfig, AugmentationReport,
    LatencyConfig, LatencyReport, RobustnessReport,
};
use intertubes_probes::{
    overlay_campaign, overlay_campaign_checked, run_campaign, Campaign, Overlay, ProbeConfig,
};
use intertubes_records::{generate_corpus, sanitize_corpus, Corpus, CorpusConfig};
use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

use crate::IntertubesError;

/// Every knob of the reproduction in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StudyConfig {
    /// World-generation parameters.
    pub world: WorldConfig,
    /// Public-records corpus parameters.
    pub corpus: CorpusConfig,
    /// Map-construction parameters.
    pub pipeline: PipelineConfig,
    /// Traceroute-campaign parameters.
    pub probes: ProbeConfig,
    /// Corridor-overlap parameters (§3).
    pub overlap: OverlapParams,
    /// Latency-study parameters (§5.3).
    pub latency: LatencyConfig,
    /// Augmentation parameters (§5.2).
    pub augmentation: AugmentationConfig,
    /// How pipeline stages respond to malformed input (default: lenient).
    pub policy: DegradationPolicy,
}

/// A fully-initialized reproduction: ground-truth world, records corpus,
/// and the constructed map. Analysis results are computed on demand.
#[derive(Debug, Clone)]
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The synthetic ground truth.
    pub world: World,
    /// The public-records corpus.
    pub corpus: Corpus,
    /// The constructed map with per-step reports.
    pub built: BuiltMap,
}

impl Study {
    /// Builds a study: generates the world and corpus, publishes the
    /// provider maps, and runs the four-step construction pipeline.
    ///
    /// Equivalent to [`Study::new_checked`] under the lenient policy,
    /// with the degradation report discarded.
    pub fn new(config: StudyConfig) -> Study {
        let mut config = config;
        config.policy = DegradationPolicy::Lenient;
        match Study::new_checked(config) {
            Ok((study, _)) => study,
            // The lenient policy never returns an error by construction.
            Err(e) => unreachable!("lenient study build cannot fail: {e}"),
        }
    }

    /// Builds a study with explicit degradation control.
    ///
    /// The configured [`StudyConfig::policy`] governs every stage:
    /// transport-layer validation, corpus sanitization, and map
    /// construction. Under [`DegradationPolicy::Lenient`] dirty input is
    /// absorbed and counted in the returned [`DegradationReport`]; under
    /// [`DegradationPolicy::Strict`] the first problem aborts with an
    /// [`IntertubesError`] naming the failing layer. Clean input yields a
    /// study identical to [`Study::new`]'s and an empty report.
    pub fn new_checked(
        config: StudyConfig,
    ) -> Result<(Study, DegradationReport), IntertubesError> {
        let world = World::generate(config.world);
        let corpus = generate_corpus(&world, &config.corpus);
        let published = world.publish_maps();
        Study::from_parts(config, world, corpus, published)
    }

    /// Builds a study with faults injected into every pipeline input, then
    /// degrades (or fails, under strict) exactly as [`Study::new_checked`]
    /// would on naturally dirty data.
    ///
    /// Returns the study, the degradation report, and the injection ledger
    /// recording how many faults of each family actually landed — tests
    /// match report counts against ledger counts.
    pub fn new_faulted(
        config: StudyConfig,
        plan: &FaultPlan,
    ) -> Result<(Study, DegradationReport, InjectionLedger), IntertubesError> {
        let mut world = World::generate(config.world);
        let corpus = generate_corpus(&world, &config.corpus);
        let mut published = world.publish_maps();
        let mut ledger = InjectionLedger::new();
        inject_published_maps(&mut published, plan, &mut ledger);
        let corpus = inject_corpus(&corpus, plan, &mut ledger);
        inject_transport(&mut world.roads, plan, &mut ledger);
        // Emitted once, serially, after all injectors ran: the ledger is
        // family-sorted, so the event sequence is canonical.
        ledger.emit_events();
        let (study, report) = Study::from_parts(config, world, corpus, published)?;
        Ok((study, report, ledger))
    }

    fn from_parts(
        config: StudyConfig,
        world: World,
        corpus: Corpus,
        published: Vec<PublishedMap>,
    ) -> Result<(Study, DegradationReport), IntertubesError> {
        let policy = config.policy;
        // Only the road layer is validated: its connectedness is a
        // construction invariant (Gabriel graph ∪ 2-NN), whereas the rail
        // layer is a sampled corridor subset and fragments naturally.
        let mut report = world.roads.validate(policy)?;
        let (corpus, corpus_report) = sanitize_corpus(&corpus, policy)?;
        report.merge(corpus_report);
        let (built, map_report) = build_map_checked(
            &published,
            &corpus,
            &world.cities,
            &world.roads,
            &world.rails,
            &config.pipeline,
            policy,
        )?;
        report.merge(map_report);
        // The merged report is canonical (sorted, aggregated), so emitting
        // it here — from the driving thread, after the last merge — yields
        // the same event sequence at every thread count.
        report.emit_events();
        Ok((
            Study {
                config,
                world,
                corpus,
                built,
            },
            report,
        ))
    }

    /// The reference study (default config, seed 1504).
    pub fn reference() -> Study {
        Study::new(StudyConfig::default())
    }

    /// A study with a different world seed, all else default.
    pub fn with_seed(seed: u64) -> Study {
        let mut cfg = StudyConfig::default();
        cfg.world.seed = seed;
        Study::new(cfg)
    }

    /// The 20 mapped provider names, in roster order.
    pub fn mapped_isp_names(&self) -> Vec<String> {
        self.world
            .roster
            .iter()
            .take(MAPPED_ISPS)
            .map(|p| p.name.clone())
            .collect()
    }

    /// The §4.1 risk matrix over the constructed map and the 20 providers.
    pub fn risk_matrix(&self) -> RiskMatrix {
        RiskMatrix::build(&self.built.map, &self.mapped_isp_names())
    }

    /// Runs a traceroute campaign (`None` = configured probe count).
    pub fn campaign(&self, probes: Option<usize>) -> Campaign {
        let mut cfg = self.config.probes;
        if let Some(p) = probes {
            cfg.probes = p;
        }
        run_campaign(&self.world, &cfg)
    }

    /// Overlays a campaign onto the constructed map (§4.3).
    pub fn overlay(&self, campaign: &Campaign) -> Overlay {
        overlay_campaign(&self.world, &self.built.map, campaign)
    }

    /// Overlays a campaign with the study's degradation policy, returning
    /// the per-stage report alongside the overlay.
    pub fn overlay_checked(
        &self,
        campaign: &Campaign,
    ) -> Result<(Overlay, DegradationReport), IntertubesError> {
        let (overlay, report) =
            overlay_campaign_checked(&self.world, &self.built.map, campaign, self.config.policy)?;
        Ok((overlay, report))
    }

    /// The risk matrix with the study's degradation policy (duplicate
    /// provider names repaired or rejected).
    pub fn risk_matrix_checked(
        &self,
    ) -> Result<(RiskMatrix, DegradationReport), IntertubesError> {
        let (rm, report) = RiskMatrix::build_checked(
            &self.built.map,
            &self.mapped_isp_names(),
            self.config.policy,
        )?;
        Ok((rm, report))
    }

    /// The §3 co-location analysis (Fig. 4 / Fig. 5).
    pub fn colocation(&self) -> Result<ColocationReport, intertubes_geo::GeoError> {
        let idx = intertubes_map::corridor_index(
            &self.world.roads,
            &self.world.rails,
            &self.world.pipelines,
            self.config.overlap.buffer_km.max(1.0),
        )?;
        intertubes_map::analyze_colocation(&self.built.map, &idx, &self.config.overlap, 10)
    }

    /// The §5.1 robustness-suggestion analysis over the `k` most-shared
    /// conduits (paper: 12). Peer suggestions are weighted toward
    /// transit-grade (tier-1) carriers, as in the paper's Table 5.
    pub fn robustness(&self, k: usize) -> RobustnessReport {
        let rm = self.risk_matrix();
        let heavy = heaviest_conduits(&rm, k);
        let tier_of = |name: &str| -> f64 {
            match self
                .world
                .roster
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.tier)
            {
                Some(intertubes_atlas::IspTier::Tier1) => 1.0,
                Some(intertubes_atlas::IspTier::Cable) => 0.45,
                Some(intertubes_atlas::IspTier::Regional) => 0.35,
                None => 0.25,
            }
        };
        intertubes_mitigation::robustness_suggestion_weighted(&self.built.map, &rm, &heavy, tier_of)
    }

    /// The §5.2 augmentation analysis.
    pub fn augmentation(&self) -> AugmentationReport {
        let rm = self.risk_matrix();
        augment(
            &self.built.map,
            &rm,
            &self.world.cities,
            &self.world.roads,
            &self.config.augmentation,
        )
    }

    /// The §5.3 latency study.
    pub fn latency(&self) -> LatencyReport {
        latency_study(
            &self.built.map,
            &self.world.cities,
            &self.world.roads,
            &self.world.rails,
            &self.config.latency,
        )
    }

    /// What-if: applies the §5.2 augmentation plan and reports the §4
    /// metrics before and after (the loop the paper leaves open).
    pub fn what_if_augmented(&self) -> intertubes_mitigation::WhatIfReport {
        let plan = self.augmentation();
        intertubes_mitigation::what_if(&self.built.map, &self.mapped_isp_names(), &plan)
    }

    /// Freezes this study into a serving snapshot (DESIGN.md §9): the
    /// constructed map, the §4 risk artifacts, a traceroute overlay, the
    /// precomputed path index, and the ALT landmark tables, all sealed in
    /// the checksummed `intertubes-snapshot/v2` container.
    ///
    /// `probes` sizes the embedded overlay campaign (`None` = the
    /// configured probe count). This is the expensive build phase the
    /// serving layer amortizes: loading the result back via
    /// [`intertubes_serve::StudySnapshot::load`] is orders of magnitude
    /// cheaper than `Study::new`.
    pub fn snapshot(&self, probes: Option<usize>) -> intertubes_serve::StudySnapshot {
        let mut span = intertubes_obs::stage("serve.freeze");
        let isps = self.mapped_isp_names();
        let rm = self.risk_matrix();
        let hamming = intertubes_risk::hamming_heatmap(&rm);
        let campaign = self.campaign(probes);
        let overlay = self.overlay(&campaign);
        // The §5.3 study supplies the right-of-way baselines the path
        // index cannot recompute from the map alone (they live in the
        // world's transport networks, which the snapshot does not carry).
        let latency = self.latency();
        let row_us_by_pair: std::collections::BTreeMap<(String, String), f64> = latency
            .pairs
            .iter()
            .map(|p| ((p.a.clone(), p.b.clone()), p.row_us))
            .collect();
        let landmarks = intertubes_serve::build_landmarks(&self.built.map);
        let paths = intertubes_serve::PathIndex::build(
            &self.built.map,
            self.config.latency.k_paths,
            self.config.latency.detour_cap,
            &row_us_by_pair,
            landmarks.as_ref(),
        );
        span.items("conduits", self.built.map.conduits.len());
        span.items("pairs", paths.pairs.len());
        intertubes_serve::StudySnapshot {
            // StudyConfig serializes infallibly (plain nested structs).
            config: serde_json::to_value(self.config).unwrap_or(serde_json::Value::Null),
            map: self.built.map.clone(),
            isps,
            risk: rm,
            hamming,
            overlay,
            paths,
            landmarks,
        }
    }

    /// Annotated GeoJSON (paper §8 future work): the constructed map with
    /// per-conduit traffic, delay and shared-risk properties. Pass the
    /// overlay whose traffic counts should be embedded.
    pub fn annotated_geojson(&self, overlay: &Overlay) -> serde_json::Value {
        let rm = self.risk_matrix();
        intertubes_map::to_annotated_geojson(
            &self.built.map,
            &intertubes_map::MapAnnotations {
                traffic: overlay.conduit_freq.clone(),
                shared: rm.shared,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_study_builds() {
        let s = Study::reference();
        assert_eq!(s.mapped_isp_names().len(), 20);
        assert!(s.built.map.conduits.len() > 300);
        assert!(s.corpus.len() > 500);
    }

    #[test]
    fn risk_matrix_dimensions_match_map() {
        let s = Study::reference();
        let rm = s.risk_matrix();
        assert_eq!(rm.conduit_count(), s.built.map.conduits.len());
        assert_eq!(rm.isp_count(), 20);
    }

    #[test]
    fn end_to_end_smoke() {
        let s = Study::reference();
        let campaign = s.campaign(Some(5_000));
        let overlay = s.overlay(&campaign);
        assert!(overlay.overlaid > 3_000);
        let rob = s.robustness(12);
        assert_eq!(rob.heavy_conduits.len(), 12);
        let lat = s.latency();
        assert!(!lat.pairs.is_empty());
    }

    #[test]
    fn different_seeds_give_different_maps() {
        let a = Study::with_seed(1504);
        let b = Study::with_seed(42);
        assert_ne!(
            a.built.map.link_count(),
            b.built.map.link_count(),
            "different worlds should differ somewhere"
        );
    }
}
