//! The workspace-wide error taxonomy.
//!
//! Every layer defines its own narrow error type (`GeoError`,
//! `GraphError`, `AtlasError`, `RecordsError`, `MapError`, `ProbeError`,
//! `RiskError`); [`IntertubesError`] unifies them at the facade so callers
//! handle one type and can still match on the failing layer. All of them
//! surface only under [`DegradationPolicy::Strict`]
//! (lenient runs degrade and report instead), except [`Snapshot`],
//! [`Plan`] and [`Io`], which concern artifacts on disk and are
//! independent of the policy.
//!
//! [`DegradationPolicy::Strict`]: intertubes_degrade::DegradationPolicy
//! [`Snapshot`]: IntertubesError::Snapshot
//! [`Plan`]: IntertubesError::Plan
//! [`Io`]: IntertubesError::Io

use intertubes_atlas::AtlasError;
use intertubes_geo::GeoError;
use intertubes_graph::GraphError;
use intertubes_map::MapError;
use intertubes_probes::ProbeError;
use intertubes_records::RecordsError;
use intertubes_risk::RiskError;
use intertubes_serve::SnapshotError;

/// Any error of the reproduction, tagged by the layer that raised it.
#[derive(Debug, Clone, PartialEq)]
pub enum IntertubesError {
    /// Geometry layer (coordinates, polylines, grids).
    Geo(GeoError),
    /// Graph layer (shortest paths, cuts).
    Graph(GraphError),
    /// Atlas layer (world, transport networks).
    Atlas(AtlasError),
    /// Public-records layer (corpus sanitization, document lookup).
    Records(RecordsError),
    /// Map-construction layer (input sanitization, pipeline).
    Map(MapError),
    /// Probe layer (campaign overlay).
    Probe(ProbeError),
    /// Risk layer (matrix construction).
    Risk(RiskError),
    /// Serving layer (snapshot container, query engine).
    Snapshot(SnapshotError),
    /// A fault plan failed to parse.
    Plan(String),
    /// A file could not be read or written.
    Io(String),
}

impl std::fmt::Display for IntertubesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntertubesError::Geo(e) => write!(f, "geo: {e}"),
            IntertubesError::Graph(e) => write!(f, "graph: {e}"),
            IntertubesError::Atlas(e) => write!(f, "atlas: {e}"),
            IntertubesError::Records(e) => write!(f, "records: {e}"),
            IntertubesError::Map(e) => write!(f, "map: {e}"),
            IntertubesError::Probe(e) => write!(f, "probes: {e}"),
            IntertubesError::Risk(e) => write!(f, "risk: {e}"),
            IntertubesError::Snapshot(e) => write!(f, "snapshot: {e}"),
            IntertubesError::Plan(msg) => write!(f, "fault plan: {msg}"),
            IntertubesError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for IntertubesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IntertubesError::Geo(e) => Some(e),
            IntertubesError::Graph(e) => Some(e),
            IntertubesError::Atlas(e) => Some(e),
            IntertubesError::Records(e) => Some(e),
            IntertubesError::Map(e) => Some(e),
            IntertubesError::Probe(e) => Some(e),
            IntertubesError::Risk(e) => Some(e),
            IntertubesError::Snapshot(e) => Some(e),
            IntertubesError::Plan(_) | IntertubesError::Io(_) => None,
        }
    }
}

impl From<GeoError> for IntertubesError {
    fn from(e: GeoError) -> Self {
        IntertubesError::Geo(e)
    }
}

impl From<GraphError> for IntertubesError {
    fn from(e: GraphError) -> Self {
        IntertubesError::Graph(e)
    }
}

impl From<AtlasError> for IntertubesError {
    fn from(e: AtlasError) -> Self {
        IntertubesError::Atlas(e)
    }
}

impl From<RecordsError> for IntertubesError {
    fn from(e: RecordsError) -> Self {
        IntertubesError::Records(e)
    }
}

impl From<MapError> for IntertubesError {
    fn from(e: MapError) -> Self {
        IntertubesError::Map(e)
    }
}

impl From<ProbeError> for IntertubesError {
    fn from(e: ProbeError) -> Self {
        IntertubesError::Probe(e)
    }
}

impl From<RiskError> for IntertubesError {
    fn from(e: RiskError) -> Self {
        IntertubesError::Risk(e)
    }
}

impl From<SnapshotError> for IntertubesError {
    fn from(e: SnapshotError) -> Self {
        IntertubesError::Snapshot(e)
    }
}

impl From<serde_json::Error> for IntertubesError {
    fn from(e: serde_json::Error) -> Self {
        IntertubesError::Plan(e.to_string())
    }
}
