//! Property-based tests: algorithms vs brute-force references on random
//! multigraphs.

use intertubes_graph::{
    bridges, connected_components, dijkstra, stoer_wagner_min_cut, yen_k_shortest, MultiGraph,
    NodeId,
};
use proptest::prelude::*;

/// A random multigraph with `n` nodes and explicit weighted edges
/// (parallel edges and self-loops possible).
fn arb_graph() -> impl Strategy<Value = (MultiGraph<(), f64>, usize)> {
    (2usize..9).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n, 0.1f64..50.0), 1..20).prop_map(move |edges| {
            let mut g = MultiGraph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for (u, v, w) in edges {
                g.add_edge(ns[u], ns[v], w);
            }
            (g, n)
        })
    })
}

/// Bellman–Ford reference for shortest-path distance.
fn bellman_ford(g: &MultiGraph<(), f64>, src: NodeId) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.node_count()];
    dist[src.index()] = 0.0;
    for _ in 0..g.node_count() {
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            let w = *g.edge(e);
            if dist[u.index()] + w < dist[v.index()] {
                dist[v.index()] = dist[u.index()] + w;
            }
            if dist[v.index()] + w < dist[u.index()] {
                dist[u.index()] = dist[v.index()] + w;
            }
        }
    }
    dist
}

proptest! {
    #[test]
    fn dijkstra_matches_bellman_ford((g, n) in arb_graph(), s in 0usize..8, t in 0usize..8) {
        let s = NodeId((s % n) as u32);
        let t = NodeId((t % n) as u32);
        let reference = bellman_ford(&g, s);
        let found = dijkstra(&g, s, t, |e| *g.edge(e)).unwrap();
        match found {
            Some(p) => {
                prop_assert!((p.cost - reference[t.index()]).abs() < 1e-9,
                    "dijkstra {} vs reference {}", p.cost, reference[t.index()]);
                prop_assert!(p.is_valid_in(&g));
                // Path cost must equal the sum of its edge weights.
                let sum: f64 = p.edges.iter().map(|e| *g.edge(*e)).sum();
                prop_assert!((sum - p.cost).abs() < 1e-9);
            }
            None => prop_assert!(reference[t.index()].is_infinite()),
        }
    }

    #[test]
    fn yen_paths_ascending_distinct_simple((g, n) in arb_graph(), s in 0usize..8, t in 0usize..8, k in 1usize..6) {
        let s = NodeId((s % n) as u32);
        let t = NodeId((t % n) as u32);
        prop_assume!(s != t);
        let ps = yen_k_shortest(&g, s, t, k, |e| *g.edge(e)).unwrap();
        prop_assert!(ps.len() <= k);
        for w in ps.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
        }
        for (i, p) in ps.iter().enumerate() {
            prop_assert!(p.is_valid_in(&g));
            prop_assert!(p.is_simple());
            let sum: f64 = p.edges.iter().map(|e| *g.edge(*e)).sum();
            prop_assert!((sum - p.cost).abs() < 1e-9);
            for q in &ps[i + 1..] {
                prop_assert!(p.edges != q.edges, "duplicate path returned");
            }
        }
        // First path must be optimal.
        if let Some(best) = dijkstra(&g, s, t, |e| *g.edge(e)).unwrap() {
            prop_assert!(!ps.is_empty());
            prop_assert!((ps[0].cost - best.cost).abs() < 1e-9);
        } else {
            prop_assert!(ps.is_empty());
        }
    }

    #[test]
    fn bridges_match_removal_definition((g, _n) in arb_graph()) {
        let found = bridges(&g);
        let (_, base_components) = connected_components(&g);
        for e in g.edge_ids() {
            // Rebuild the graph without edge e.
            let mut h: MultiGraph<(), f64> = MultiGraph::new();
            for _ in 0..g.node_count() {
                h.add_node(());
            }
            for e2 in g.edge_ids() {
                if e2 != e {
                    let (u, v) = g.endpoints(e2);
                    h.add_edge(u, v, *g.edge(e2));
                }
            }
            let (_, comps) = connected_components(&h);
            let is_bridge_by_def = comps > base_components;
            prop_assert_eq!(found.contains(&e), is_bridge_by_def,
                "edge {:?}: bridges() says {}, removal says {}", e, found.contains(&e), is_bridge_by_def);
        }
    }

    #[test]
    fn min_cut_never_beats_any_bipartition((g, n) in arb_graph()) {
        prop_assume!(intertubes_graph::is_connected(&g));
        let (w, side) = stoer_wagner_min_cut(&g, |e| *g.edge(e));
        prop_assert!(!side.is_empty() && side.len() < n);
        // Check against every bipartition (n ≤ 8 so ≤ 2^8 subsets).
        let cut_weight = |mask: u32| -> f64 {
            let mut s = 0.0;
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                if u == v { continue; }
                let su = mask >> u.index() & 1;
                let sv = mask >> v.index() & 1;
                if su != sv {
                    s += *g.edge(e);
                }
            }
            s
        };
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << n) - 1 {
            best = best.min(cut_weight(mask));
        }
        prop_assert!((w - best).abs() < 1e-9, "stoer–wagner {w} vs exhaustive {best}");
        // And the returned side realizes the weight.
        let mut mask = 0u32;
        for s in &side {
            mask |= 1 << s.index();
        }
        prop_assert!((cut_weight(mask) - w).abs() < 1e-9);
    }
}

/// Brute-force articulation check: removing the node increases components
/// among the remaining nodes.
fn is_articulation_by_removal(g: &MultiGraph<(), f64>, victim: NodeId) -> bool {
    // Components among nodes != victim, using edges avoiding victim.
    let n = g.node_count();
    let mut comp: Vec<u32> = vec![u32::MAX; n];
    let mut count = 0u32;
    for start in 0..n {
        if start == victim.index() || comp[start] != u32::MAX {
            continue;
        }
        comp[start] = count;
        let mut stack = vec![NodeId(start as u32)];
        while let Some(x) = stack.pop() {
            for (_, y) in g.neighbors(x) {
                if y != victim && comp[y.index()] == u32::MAX {
                    comp[y.index()] = count;
                    stack.push(y);
                }
            }
        }
        count += 1;
    }
    // Baseline components (victim excluded from counting on both sides):
    let (base_comp, _) = connected_components(g);
    let mut base_ids: Vec<u32> = (0..n)
        .filter(|&i| i != victim.index())
        .map(|i| base_comp[i])
        .collect();
    base_ids.sort_unstable();
    base_ids.dedup();
    // Also ignore components the victim formed alone.
    count as usize > base_ids.len()
}

proptest! {
    #[test]
    fn articulation_points_match_removal_definition((g, _n) in arb_graph()) {
        let found = intertubes_graph::articulation_points(&g);
        for v in g.node_ids() {
            let by_def = is_articulation_by_removal(&g, v);
            prop_assert_eq!(
                found.contains(&v),
                by_def,
                "node {:?}: articulation_points() says {}, removal says {}",
                v, found.contains(&v), by_def
            );
        }
    }

    #[test]
    fn shortest_path_tree_satisfies_relaxation((g, _n) in arb_graph(), s in 0usize..8) {
        let s = NodeId((s % g.node_count()) as u32);
        let tree = intertubes_graph::shortest_path_tree(&g, s, |e| *g.edge(e)).unwrap();
        // No edge can relax any distance further (Bellman optimality).
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            let w = *g.edge(e);
            let du = tree.distance(u);
            let dv = tree.distance(v);
            prop_assert!(dv <= du + w + 1e-9, "edge {:?} relaxes {} > {} + {}", e, dv, du, w);
            prop_assert!(du <= dv + w + 1e-9);
        }
    }
}
