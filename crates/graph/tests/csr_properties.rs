//! Property-based tests pinning the CSR search stack to the `MultiGraph`
//! engines: same paths, same order, same cost bits — only the cost of
//! computing them may differ (DESIGN.md §10).
//!
//! The generator includes zero-weight edges, parallel edges, self-loops
//! and disconnected components — exactly the shapes where a divergent
//! tie-break or reset bug would surface.

use intertubes_graph::{
    bidirectional_dijkstra, csr_dijkstra, csr_dijkstra_filtered, csr_shortest_path_tree,
    dijkstra, dijkstra_filtered, shortest_path_tree, yen_k_shortest, yen_k_shortest_csr,
    Landmarks, MultiGraph, NodeId, SearchState, YenWorkspace,
};
use proptest::prelude::*;

/// A random multigraph: parallel edges, self-loops and zero-weight edges
/// possible, plus isolated nodes (node count can exceed edge coverage).
fn arb_graph() -> impl Strategy<Value = (MultiGraph<(), f64>, usize)> {
    (2usize..9).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n, 0.0f64..50.0), 1..20).prop_map(move |edges| {
            let mut g = MultiGraph::new();
            let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for (u, v, w) in edges {
                // Snap the low end of the weight range to exactly zero so
                // zero-weight ties get real coverage.
                let w = if w < 5.0 { 0.0 } else { w };
                g.add_edge(ns[u], ns[v], w);
            }
            (g, n)
        })
    })
}

proptest! {
    /// The CSR point query returns bit-identical paths to `dijkstra` for
    /// every pair, across repeated reuses of one scratch state.
    #[test]
    fn csr_dijkstra_is_byte_identical((g, _n) in arb_graph()) {
        let csr = g.to_csr();
        let mut st = SearchState::new();
        for s in g.node_ids() {
            for t in g.node_ids() {
                let old = dijkstra(&g, s, t, |e| *g.edge(e)).unwrap();
                let new = csr_dijkstra(&csr, &mut st, s, t, |e| *g.edge(e)).unwrap();
                prop_assert_eq!(&old, &new, "pair {:?}->{:?}", s, t);
                if let Some(p) = &new {
                    prop_assert_eq!(p.cost.to_bits(), old.as_ref().unwrap().cost.to_bits());
                }
            }
        }
    }

    /// Full CSR trees agree with `shortest_path_tree` on every distance
    /// and every reconstructed path.
    #[test]
    fn csr_tree_is_byte_identical((g, _n) in arb_graph(), s in 0usize..8) {
        let s = NodeId((s % g.node_count()) as u32);
        let csr = g.to_csr();
        let mut st = SearchState::new();
        let old = shortest_path_tree(&g, s, |e| *g.edge(e)).unwrap();
        csr_shortest_path_tree(&csr, &mut st, s, |e| *g.edge(e)).unwrap();
        for t in g.node_ids() {
            prop_assert_eq!(old.distance(t).to_bits(), st.distance(t).to_bits());
            prop_assert_eq!(old.path_to(t), st.path_to(t));
        }
    }

    /// Masked searches agree too — with and without ALT pruning, which
    /// must never change the result, only skip work.
    #[test]
    fn csr_filtered_is_byte_identical_with_and_without_alt(
        (g, _n) in arb_graph(),
        banned_node in 0usize..8,
        banned_edge in 0usize..19,
    ) {
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 4, |e| *g.edge(e)).unwrap();
        let mut st = SearchState::new();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[banned_node % g.node_count()] = true;
        let mut banned_edges = vec![false; g.edge_count()];
        banned_edges[banned_edge % g.edge_count()] = true;
        for s in g.node_ids() {
            for t in g.node_ids() {
                let old = dijkstra_filtered(
                    &g, s, t, |e| *g.edge(e), &banned_nodes, &banned_edges,
                ).unwrap();
                for alt in [None, Some(&lm)] {
                    let new = csr_dijkstra_filtered(
                        &csr, &mut st, s, t, |e| *g.edge(e),
                        &banned_nodes, &banned_edges, alt,
                    ).unwrap();
                    prop_assert_eq!(&old, &new, "pair {:?}->{:?} alt={}", s, t, alt.is_some());
                }
            }
        }
    }

    /// CSR Yen (fresh or reused workspace, pruned or not) returns exactly
    /// the `MultiGraph` Yen ranking.
    #[test]
    fn csr_yen_is_byte_identical((g, n) in arb_graph(), s in 0usize..8, t in 0usize..8, k in 1usize..6) {
        let s = NodeId((s % n) as u32);
        let t = NodeId((t % n) as u32);
        prop_assume!(s != t);
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 4, |e| *g.edge(e)).unwrap();
        let mut ws = YenWorkspace::new();
        let old = yen_k_shortest(&g, s, t, k, |e| *g.edge(e)).unwrap();
        for alt in [None, Some(&lm)] {
            let new = yen_k_shortest_csr(&csr, &mut ws, s, t, k, |e| *g.edge(e), alt).unwrap();
            prop_assert_eq!(&old, &new, "alt={}", alt.is_some());
        }
    }

    /// ALT admissibility: the landmark bound never exceeds the true
    /// shortest-path distance (infinite bounds only when truly separated).
    #[test]
    fn landmark_bound_is_admissible((g, _n) in arb_graph(), count in 1usize..6) {
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, count, |e| *g.edge(e)).unwrap();
        for s in g.node_ids() {
            let tree = shortest_path_tree(&g, s, |e| *g.edge(e)).unwrap();
            for t in g.node_ids() {
                let truth = tree.distance(t);
                let bound = lm.lower_bound(s, t);
                prop_assert!(
                    bound <= truth + 1e-9 || (bound.is_infinite() && truth.is_infinite()),
                    "{:?}->{:?}: bound {} exceeds true distance {}", s, t, bound, truth
                );
            }
        }
    }

    /// Bidirectional search finds the exact minimum cost (and a valid
    /// realizing path) for every pair.
    #[test]
    fn bidirectional_cost_matches_dijkstra((g, _n) in arb_graph()) {
        let csr = g.to_csr();
        let (mut fwd, mut bwd) = (SearchState::new(), SearchState::new());
        for s in g.node_ids() {
            for t in g.node_ids() {
                let old = dijkstra(&g, s, t, |e| *g.edge(e)).unwrap();
                let bi = bidirectional_dijkstra(&csr, &mut fwd, &mut bwd, s, t, |e| *g.edge(e))
                    .unwrap();
                match (old, bi) {
                    (Some(u), Some(b)) => {
                        prop_assert!((u.cost - b.cost).abs() < 1e-9,
                            "{:?}->{:?}: {} vs {}", s, t, u.cost, b.cost);
                        prop_assert!(b.is_valid_in(&g));
                        let sum: f64 = b.edges.iter().map(|e| *g.edge(*e)).sum();
                        prop_assert!((sum - b.cost).abs() < 1e-9);
                        prop_assert_eq!(b.source(), s);
                        prop_assert_eq!(b.target(), t);
                    }
                    (None, None) => {}
                    (u, b) => prop_assert!(false, "{:?}->{:?}: {:?} vs {:?}", s, t, u, b),
                }
            }
        }
    }
}
