use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Index of a node in a [`MultiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of an edge in a [`MultiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord<E> {
    u: NodeId,
    v: NodeId,
    data: E,
}

/// A borrowed view of one edge: its id, endpoints and payload.
#[derive(Debug)]
pub struct EdgeRef<'g, E> {
    /// The edge's id.
    pub id: EdgeId,
    /// One endpoint (the `u` passed to `add_edge`).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The edge payload.
    pub data: &'g E,
}

impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for EdgeRef<'_, E> {}

/// An undirected multigraph with arena storage.
///
/// Nodes and edges are append-only (the paper's observation: "installed
/// conduits rarely become defunct"); algorithms that need edge removal work
/// on filtered views via cost functions or edge masks instead of mutating
/// the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// adjacency[n] = (edge, other endpoint) pairs.
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl<N, E> Default for MultiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> MultiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        MultiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        MultiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, data: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `u` and `v` (parallel edges and
    /// self-loops are allowed) and returns its id.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of bounds — edges reference existing
    /// nodes by construction everywhere in this workspace.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, data: E) -> EdgeId {
        assert!(
            u.index() < self.nodes.len(),
            "edge endpoint u out of bounds"
        );
        assert!(
            v.index() < self.nodes.len(),
            "edge endpoint v out of bounds"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { u, v, data });
        self.adjacency[u.index()].push((id, v));
        if u != v {
            self.adjacency[v.index()].push((id, u));
        }
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The payload of node `n`.
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable payload of node `n`.
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Checked payload lookup.
    pub fn try_node(&self, n: NodeId) -> Result<&N, GraphError> {
        self.nodes
            .get(n.index())
            .ok_or(GraphError::NodeOutOfBounds {
                index: n.0,
                nodes: self.nodes.len(),
            })
    }

    /// The payload of edge `e`.
    pub fn edge(&self, e: EdgeId) -> &E {
        &self.edges[e.index()].data
    }

    /// Mutable payload of edge `e`.
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].data
    }

    /// Checked edge payload lookup.
    pub fn try_edge(&self, e: EdgeId) -> Result<&E, GraphError> {
        self.edges
            .get(e.index())
            .map(|r| &r.data)
            .ok_or(GraphError::EdgeOutOfBounds {
                index: e.0,
                edges: self.edges.len(),
            })
    }

    /// The two endpoints of edge `e` (in insertion order).
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let r = &self.edges[e.index()];
        (r.u, r.v)
    }

    /// Given edge `e` incident to node `n`, the endpoint that is not `n`.
    /// For self-loops returns `n` itself.
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let (u, v) = self.endpoints(e);
        if u == n {
            v
        } else {
            u
        }
    }

    /// A borrowed view of edge `e`.
    pub fn edge_ref(&self, e: EdgeId) -> EdgeRef<'_, E> {
        let r = &self.edges[e.index()];
        EdgeRef {
            id: e,
            u: r.u,
            v: r.v,
            data: &r.data,
        }
    }

    /// Iterator over `(edge, neighbour)` pairs incident to `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adjacency[n.index()].iter().copied()
    }

    /// Degree of `n` (self-loops count once).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Iterator over all edge ids joining `u` and `v` (in either insertion
    /// orientation), in adjacency order. Allocation-free — collect if a
    /// `Vec` is needed.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adjacency[u.index()]
            .iter()
            .filter(move |(_, w)| *w == v)
            .map(|(e, _)| *e)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over borrowed views of all edges.
    pub fn edge_refs(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().enumerate().map(|(i, r)| EdgeRef {
            id: EdgeId(i as u32),
            u: r.u,
            v: r.v,
            data: &r.data,
        })
    }

    /// Maps the graph to new payload types, preserving structure and ids.
    pub fn map<N2, E2>(
        &self,
        mut fnode: impl FnMut(NodeId, &N) -> N2,
        mut fedge: impl FnMut(EdgeId, &E) -> E2,
    ) -> MultiGraph<N2, E2> {
        MultiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| fnode(NodeId(i as u32), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, r)| EdgeRecord {
                    u: r.u,
                    v: r.v,
                    data: fedge(EdgeId(i as u32), &r.data),
                })
                .collect(),
            adjacency: self.adjacency.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> MultiGraph<&'static str, f64> {
        // a --1.0-- b --2.0-- d ; a --2.5-- c --1.0-- d ; plus parallel a-b.
        let mut g = MultiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 2.0);
        g.add_edge(a, c, 2.5);
        g.add_edge(c, d, 1.0);
        g.add_edge(a, b, 9.0); // parallel edge
        g
    }

    #[test]
    fn counts_and_payloads() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(*g.node(NodeId(2)), "c");
        assert_eq!(*g.edge(EdgeId(3)), 1.0);
    }

    #[test]
    fn adjacency_and_degree() {
        let g = diamond();
        let a = NodeId(0);
        assert_eq!(g.degree(a), 3); // b, c, and parallel b
        let nbrs: Vec<NodeId> = g.neighbors(a).map(|(_, n)| n).collect();
        assert_eq!(nbrs.iter().filter(|n| n.0 == 1).count(), 2);
        assert_eq!(nbrs.iter().filter(|n| n.0 == 2).count(), 1);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let g = diamond();
        let es: Vec<EdgeId> = g.edges_between(NodeId(0), NodeId(1)).collect();
        assert_eq!(es.len(), 2);
        assert_ne!(es[0], es[1]);
        // Symmetric query.
        assert_eq!(g.edges_between(NodeId(1), NodeId(0)).count(), 2);
    }

    #[test]
    fn other_endpoint_works() {
        let g = diamond();
        let e = g.edges_between(NodeId(1), NodeId(3)).next().unwrap();
        assert_eq!(g.other_endpoint(e, NodeId(1)), NodeId(3));
        assert_eq!(g.other_endpoint(e, NodeId(3)), NodeId(1));
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let a = g.add_node(());
        let e = g.add_edge(a, a, ());
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.other_endpoint(e, a), a);
    }

    #[test]
    fn checked_lookups() {
        let g = diamond();
        assert!(g.try_node(NodeId(99)).is_err());
        assert!(g.try_edge(EdgeId(99)).is_err());
        assert!(g.try_node(NodeId(0)).is_ok());
        assert!(g.try_edge(EdgeId(0)).is_ok());
    }

    #[test]
    fn map_preserves_structure() {
        let g = diamond();
        let g2 = g.map(|_, n| n.len(), |_, w| (*w * 10.0) as i64);
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(*g2.edge(EdgeId(1)), 20);
        assert_eq!(g2.endpoints(EdgeId(1)), g.endpoints(EdgeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_checks_bounds() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }
}
