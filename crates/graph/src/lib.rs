//! Graph substrate for the InterTubes reproduction.
//!
//! Every network in the paper — the physical conduit map, the synthetic
//! road/rail networks, per-ISP footprints, and the candidate-augmentation
//! graphs of §5 — is an undirected multigraph: multiple parallel conduits may
//! connect the same city pair, and roads/rails routinely run in parallel.
//!
//! This crate provides:
//!
//! * [`MultiGraph`] — an arena-based undirected multigraph with typed ids
//!   ([`NodeId`], [`EdgeId`]) and arbitrary node/edge payloads.
//! * [`dijkstra`] / [`shortest_path_tree`] — non-negative-cost shortest
//!   paths with a caller-supplied edge cost function, so the same engine
//!   serves km-cost routing (latency, §5.3), hop-cost routing (path
//!   inflation, §5.1) and shared-risk-cost routing (eq. 1).
//! * [`yen_k_shortest`] — loopless k-shortest paths (for the "average of
//!   existing paths" series of Fig. 12).
//! * [`connected_components`], [`bridges`], [`articulation_points`],
//!   [`stoer_wagner_min_cut`] — robustness primitives ("number of fiber cuts
//!   needed to partition", §4).
//! * [`CsrGraph`] + the `csr_*` search family — the cache-friendly hot
//!   path: frozen flat adjacency, reusable [`SearchState`] scratch,
//!   early-exit / [`bidirectional_dijkstra`] point queries, and ALT
//!   [`Landmarks`] pruning. Same results as the `MultiGraph` engines,
//!   byte for byte; only the cost changes (DESIGN.md §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod connectivity;
mod csr;
mod dijkstra;
mod landmarks;
mod multigraph;
mod path;
mod search;
mod yen;

pub use batch::{
    par_shortest_paths, par_shortest_paths_csr, par_yen_k_shortest, par_yen_k_shortest_csr,
};
pub use connectivity::{
    articulation_points, bridges, connected_components, is_connected, stoer_wagner_min_cut,
};
pub use csr::CsrGraph;
pub use dijkstra::{dijkstra, dijkstra_filtered, shortest_path_tree, ShortestPathTree};
pub use landmarks::{Landmarks, DEFAULT_LANDMARK_COUNT};
pub use multigraph::{EdgeId, EdgeRef, MultiGraph, NodeId};
pub use path::Path;
pub use search::{
    bidirectional_dijkstra, csr_dijkstra, csr_dijkstra_filtered, csr_shortest_path_tree,
    SearchState,
};
pub use yen::{yen_k_shortest, yen_k_shortest_csr, YenWorkspace};

/// Errors produced by graph queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was not present in the graph.
    NodeOutOfBounds {
        /// The offending id's index.
        index: u32,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// An edge id was not present in the graph.
    EdgeOutOfBounds {
        /// The offending id's index.
        index: u32,
        /// Number of edges in the graph.
        edges: usize,
    },
    /// A cost function returned a negative or NaN cost for an edge.
    InvalidCost {
        /// The offending edge.
        edge: EdgeId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { index, nodes } => {
                write!(f, "node id {index} out of bounds (graph has {nodes} nodes)")
            }
            GraphError::EdgeOutOfBounds { index, edges } => {
                write!(f, "edge id {index} out of bounds (graph has {edges} edges)")
            }
            GraphError::InvalidCost { edge } => {
                write!(
                    f,
                    "cost function returned a negative or NaN cost for edge {edge:?}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}
