//! Batch path enumeration over independent source/target pairs.
//!
//! All-pairs analyses (the §5.3 latency study, mitigation scans) query the
//! same read-only graph for many unrelated pairs; each query is a pure
//! function of the graph and the pair, so the batch fans out one contiguous
//! pair chunk per task and returns results in input order. Output is
//! byte-identical to mapping the serial routine over the slice (DESIGN.md
//! §7).

use crate::{dijkstra, yen_k_shortest, EdgeId, GraphError, MultiGraph, NodeId, Path};

/// Shortest path for every pair, in input order.
///
/// Each element is exactly what [`dijkstra`] returns for that pair.
pub fn par_shortest_paths<N: Sync, E: Sync>(
    g: &MultiGraph<N, E>,
    pairs: &[(NodeId, NodeId)],
    cost: impl Fn(EdgeId) -> f64 + Sync,
) -> Vec<Result<Option<Path>, GraphError>> {
    intertubes_obs::counter("graph.shortest_path_queries", pairs.len() as u64);
    intertubes_parallel::par_map(pairs, |&(s, t)| dijkstra(g, s, t, &cost))
}

/// Yen's k cheapest loopless paths for every pair, in input order.
///
/// Each element is exactly what [`yen_k_shortest`] returns for that pair.
pub fn par_yen_k_shortest<N: Sync, E: Sync>(
    g: &MultiGraph<N, E>,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    cost: impl Fn(EdgeId) -> f64 + Sync,
) -> Vec<Result<Vec<Path>, GraphError>> {
    intertubes_obs::counter("graph.yen_queries", pairs.len() as u64);
    intertubes_parallel::par_map(pairs, |&(s, t)| yen_k_shortest(g, s, t, k, &cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of `n` nodes with unit edges plus one heavy chord.
    fn ring(n: u32) -> MultiGraph<(), f64> {
        let mut g = MultiGraph::with_capacity(n as usize, n as usize + 1);
        for _ in 0..n {
            g.add_node(());
        }
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0);
        }
        g.add_edge(NodeId(0), NodeId(n / 2), 10.0);
        g
    }

    #[test]
    fn batch_matches_serial_dijkstra() {
        let g = ring(12);
        let pairs: Vec<(NodeId, NodeId)> = (0..12u32)
            .flat_map(|a| (0..12u32).map(move |b| (NodeId(a), NodeId(b))))
            .collect();
        let cost = |e: EdgeId| *g.edge(e);
        let batch = par_shortest_paths(&g, &pairs, cost);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let serial = dijkstra(&g, s, t, cost).unwrap();
            let parallel = batch[i].as_ref().unwrap();
            assert_eq!(
                serial.as_ref().map(|p| (&p.nodes, p.cost)),
                parallel.as_ref().map(|p| (&p.nodes, p.cost)),
                "pair {s:?}->{t:?}"
            );
        }
    }

    #[test]
    fn batch_matches_serial_yen() {
        let g = ring(8);
        let pairs: Vec<(NodeId, NodeId)> =
            (1..8u32).map(|b| (NodeId(0), NodeId(b))).collect();
        let cost = |e: EdgeId| *g.edge(e);
        let batch = par_yen_k_shortest(&g, &pairs, 3, cost);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let serial = yen_k_shortest(&g, s, t, 3, cost).unwrap();
            let parallel = batch[i].as_ref().unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (sp, pp) in serial.iter().zip(parallel) {
                assert_eq!(sp.nodes, pp.nodes);
                assert_eq!(sp.edges, pp.edges);
            }
        }
    }

    #[test]
    fn out_of_bounds_errors_propagate_in_order() {
        let g = ring(4);
        let pairs = [(NodeId(0), NodeId(99)), (NodeId(0), NodeId(1))];
        let batch = par_shortest_paths(&g, &pairs, |e| *g.edge(e));
        assert!(batch[0].is_err());
        assert!(batch[1].is_ok());
    }
}
