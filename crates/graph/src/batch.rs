//! Batch path enumeration over independent source/target pairs.
//!
//! All-pairs analyses (the §5.3 latency study, mitigation scans) query the
//! same read-only graph for many unrelated pairs; each query is a pure
//! function of the graph and the pair, so the batch fans out over worker
//! chunks and returns results in input order. Output is byte-identical to
//! mapping the serial routine over the slice (DESIGN.md §7, §10).
//!
//! The batches run on the [`CsrGraph`] hot path: pairs are grouped by
//! source so one shortest-path tree serves every target of that source,
//! and each worker chunk reuses a single [`SearchState`] /
//! [`YenWorkspace`] scratch across its queries.
//!
//! Note on invalid costs: point queries stop as soon as their target
//! settles, so a NaN/negative cost on an edge the search never reaches is
//! not observed (the original full-tree engine would have reported it).
//! Well-formed cost functions are unaffected.

use std::collections::BTreeMap;

use crate::{
    csr_dijkstra, csr_shortest_path_tree, yen_k_shortest_csr, CsrGraph, EdgeId, GraphError,
    Landmarks, MultiGraph, NodeId, Path, SearchState, YenWorkspace, DEFAULT_LANDMARK_COUNT,
};

/// Shortest path for every pair, in input order.
///
/// Each element is exactly what [`dijkstra`] returns for that pair (see
/// the module note on invalid costs). Freezes a [`CsrGraph`] and
/// delegates to [`par_shortest_paths_csr`]; callers issuing repeated
/// batches over one graph should freeze once and call that directly.
pub fn par_shortest_paths<N: Sync, E: Sync>(
    g: &MultiGraph<N, E>,
    pairs: &[(NodeId, NodeId)],
    cost: impl Fn(EdgeId) -> f64 + Sync,
) -> Vec<Result<Option<Path>, GraphError>> {
    par_shortest_paths_csr(&g.to_csr(), pairs, cost)
}

/// [`par_shortest_paths`] over a prebuilt [`CsrGraph`].
///
/// Pairs sharing a source are answered from one shortest-path tree; the
/// tree is identical to the per-pair search, so results (and their input
/// order) are unchanged.
pub fn par_shortest_paths_csr(
    csr: &CsrGraph,
    pairs: &[(NodeId, NodeId)],
    cost: impl Fn(EdgeId) -> f64 + Sync,
) -> Vec<Result<Option<Path>, GraphError>> {
    intertubes_obs::counter("graph.shortest_path_queries", pairs.len() as u64);
    let n = csr.node_count();
    let oob = |id: NodeId| GraphError::NodeOutOfBounds { index: id.0, nodes: n };
    // Group pair indices by source; BTreeMap keeps grouping deterministic.
    let mut by_source: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, &(s, _)) in pairs.iter().enumerate() {
        by_source.entry(s.0).or_default().push(i);
    }
    let groups: Vec<(u32, Vec<usize>)> = by_source.into_iter().collect();
    let chunk = intertubes_parallel::chunk_len(groups.len());
    let scattered = intertubes_parallel::par_chunks_map(&groups, chunk, |_, gs| {
        let mut st = SearchState::new();
        let mut out: Vec<(usize, Result<Option<Path>, GraphError>)> = Vec::new();
        for (s, idxs) in gs {
            let source = NodeId(*s);
            if let [i] = idxs[..] {
                // Lone target: early-exit point query.
                out.push((i, csr_dijkstra(csr, &mut st, source, pairs[i].1, &cost)));
                continue;
            }
            // Shared source: one full tree answers every target. Per-pair
            // error precedence matches `dijkstra`: target bounds first,
            // then source bounds / search errors.
            let tree = if source.index() >= n {
                Err(oob(source))
            } else {
                csr_shortest_path_tree(csr, &mut st, source, &cost)
            };
            for &i in idxs {
                let t = pairs[i].1;
                let r = if t.index() >= n {
                    Err(oob(t))
                } else {
                    match &tree {
                        Ok(()) => Ok(st.path_to(t)),
                        Err(e) => Err(e.clone()),
                    }
                };
                out.push((i, r));
            }
        }
        out
    });
    let mut results: Vec<Result<Option<Path>, GraphError>> = vec![Ok(None); pairs.len()];
    for chunk in scattered {
        for (i, r) in chunk {
            results[i] = r;
        }
    }
    results
}

/// Yen's k cheapest loopless paths for every pair, in input order.
///
/// Each element is exactly what [`yen_k_shortest`](crate::yen_k_shortest)
/// returns for that pair. Freezes a [`CsrGraph`], builds an ALT
/// [`Landmarks`] table to prune the spur searches, and delegates to
/// [`par_yen_k_shortest_csr`].
pub fn par_yen_k_shortest<N: Sync, E: Sync>(
    g: &MultiGraph<N, E>,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    cost: impl Fn(EdgeId) -> f64 + Sync,
) -> Vec<Result<Vec<Path>, GraphError>> {
    let csr = g.to_csr();
    // A failed build (invalid cost) just disables pruning; the per-pair
    // searches will surface the same error themselves.
    let lm = Landmarks::build(&csr, DEFAULT_LANDMARK_COUNT, &cost).ok();
    par_yen_k_shortest_csr(&csr, pairs, k, cost, lm.as_ref())
}

/// [`par_yen_k_shortest`] over a prebuilt [`CsrGraph`] and optional
/// landmark table (which must match the graph + cost function).
pub fn par_yen_k_shortest_csr(
    csr: &CsrGraph,
    pairs: &[(NodeId, NodeId)],
    k: usize,
    cost: impl Fn(EdgeId) -> f64 + Sync,
    lm: Option<&Landmarks>,
) -> Vec<Result<Vec<Path>, GraphError>> {
    intertubes_obs::counter("graph.yen_queries", pairs.len() as u64);
    let chunk = intertubes_parallel::chunk_len(pairs.len());
    let chunks = intertubes_parallel::par_chunks_map(pairs, chunk, |_, ps| {
        let mut ws = YenWorkspace::new();
        ps.iter()
            .map(|&(s, t)| yen_k_shortest_csr(csr, &mut ws, s, t, k, &cost, lm))
            .collect::<Vec<_>>()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, yen_k_shortest};

    /// A ring of `n` nodes with unit edges plus one heavy chord.
    fn ring(n: u32) -> MultiGraph<(), f64> {
        let mut g = MultiGraph::with_capacity(n as usize, n as usize + 1);
        for _ in 0..n {
            g.add_node(());
        }
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n), 1.0);
        }
        g.add_edge(NodeId(0), NodeId(n / 2), 10.0);
        g
    }

    #[test]
    fn batch_matches_serial_dijkstra() {
        let g = ring(12);
        let pairs: Vec<(NodeId, NodeId)> = (0..12u32)
            .flat_map(|a| (0..12u32).map(move |b| (NodeId(a), NodeId(b))))
            .collect();
        let cost = |e: EdgeId| *g.edge(e);
        let batch = par_shortest_paths(&g, &pairs, cost);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let serial = dijkstra(&g, s, t, cost).unwrap();
            let parallel = batch[i].as_ref().unwrap();
            assert_eq!(
                serial.as_ref().map(|p| (&p.nodes, p.cost)),
                parallel.as_ref().map(|p| (&p.nodes, p.cost)),
                "pair {s:?}->{t:?}"
            );
        }
    }

    #[test]
    fn batch_matches_serial_yen() {
        let g = ring(8);
        let pairs: Vec<(NodeId, NodeId)> =
            (1..8u32).map(|b| (NodeId(0), NodeId(b))).collect();
        let cost = |e: EdgeId| *g.edge(e);
        let batch = par_yen_k_shortest(&g, &pairs, 3, cost);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let serial = yen_k_shortest(&g, s, t, 3, cost).unwrap();
            let parallel = batch[i].as_ref().unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (sp, pp) in serial.iter().zip(parallel) {
                assert_eq!(sp.nodes, pp.nodes);
                assert_eq!(sp.edges, pp.edges);
            }
        }
    }

    #[test]
    fn out_of_bounds_errors_propagate_in_order() {
        let g = ring(4);
        let pairs = [(NodeId(0), NodeId(99)), (NodeId(0), NodeId(1))];
        let batch = par_shortest_paths(&g, &pairs, |e| *g.edge(e));
        assert!(batch[0].is_err());
        assert!(batch[1].is_ok());
    }

    #[test]
    fn grouped_sources_and_lone_sources_agree_with_serial() {
        let g = ring(10);
        // A mix: several targets for source 2, one lone pair for source 7,
        // an out-of-bounds source, and an out-of-bounds target mid-group.
        let pairs = [
            (NodeId(2), NodeId(5)),
            (NodeId(2), NodeId(99)),
            (NodeId(7), NodeId(1)),
            (NodeId(42), NodeId(3)),
            (NodeId(2), NodeId(8)),
        ];
        let cost = |e: EdgeId| *g.edge(e);
        let batch = par_shortest_paths(&g, &pairs, cost);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], dijkstra(&g, s, t, cost), "pair {s:?}->{t:?}");
        }
    }
}
