//! Allocation-free searches over [`CsrGraph`] with reusable scratch state.
//!
//! The original `dijkstra.rs` routines allocate `vec![f64::INFINITY; n]`,
//! `vec![None; n]`, and a fresh heap on every query; batch analyses issue
//! hundreds of thousands of queries over the same few-hundred-node graph,
//! so those allocations dominate. [`SearchState`] keeps the arrays alive
//! across queries and resets only the entries the previous search touched
//! (a "touched list"), making per-query setup O(nodes settled), not
//! O(graph).
//!
//! Three search flavours share one core loop:
//!
//! * [`csr_shortest_path_tree`] — full single-source tree, identical to
//!   [`crate::shortest_path_tree`] relaxation for relaxation;
//! * [`csr_dijkstra`] / [`csr_dijkstra_filtered`] — s→t queries that stop
//!   the moment the target settles, optionally pruned by an ALT landmark
//!   bound ([`Landmarks`]);
//! * [`bidirectional_dijkstra`] — simultaneous forward/backward search
//!   meeting in the middle; exact minimum cost, but **cost-only** callers
//!   should use it (ties may resolve to a different equal-cost path than
//!   the unidirectional engine).
//!
//! DESIGN.md §10 spells out why the early exit and the ALT pruning return
//! byte-identical paths to the full-tree original: once a node settles its
//! distance and predecessor are final, and a pruned relaxation can never
//! be part of the target's predecessor chain (the margin in
//! [`prune_margin`] covers float rounding in the landmark bound).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{CsrGraph, EdgeId, GraphError, Landmarks, NodeId, Path};

/// A total-ordering wrapper for finite non-negative `f64` costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Sentinel for "no predecessor" in the flat prev arrays.
const NONE: u32 = u32::MAX;

/// Reusable scratch for the CSR searches: distance/predecessor arrays, the
/// binary heap, and the touched list that makes resets cheap.
///
/// One `SearchState` serves any number of sequential queries (even over
/// different graphs); it is not `Sync` — parallel batches keep one per
/// worker chunk.
#[derive(Debug, Default)]
pub struct SearchState {
    dist: Vec<f64>,
    prev_edge: Vec<u32>,
    prev_node: Vec<u32>,
    /// Node ids whose entries the last search dirtied.
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
}

impl SearchState {
    /// A fresh scratch; arrays grow lazily to the largest graph searched.
    pub fn new() -> SearchState {
        SearchState::default()
    }

    /// Resets dirty entries from the previous search and ensures capacity
    /// for an `n`-node graph.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev_edge.resize(n, NONE);
            self.prev_node.resize(n, NONE);
        }
        for &t in &self.touched {
            self.dist[t as usize] = f64::INFINITY;
            self.prev_edge[t as usize] = NONE;
            self.prev_node[t as usize] = NONE;
        }
        self.touched.clear();
        self.heap.clear();
    }

    /// Cost of the cheapest path found to `n` by the last search, or
    /// `f64::INFINITY` if unreached (including out-of-bounds ids).
    pub fn distance(&self, n: NodeId) -> f64 {
        self.dist.get(n.index()).copied().unwrap_or(f64::INFINITY)
    }

    /// Reconstructs the cheapest path found to `target` by the last
    /// search, or `None` if unreached. Identical in shape and cost to
    /// [`crate::ShortestPathTree::path_to`].
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        let cost = self.distance(target);
        if !cost.is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target.index();
        while self.prev_edge[cur] != NONE {
            edges.push(EdgeId(self.prev_edge[cur]));
            nodes.push(NodeId(self.prev_node[cur]));
            cur = self.prev_node[cur] as usize;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost })
    }
}

/// Slack added to the ALT pruning bound so float rounding in the landmark
/// lookup can never prune a relaxation that exact arithmetic would keep.
#[inline]
fn prune_margin(ub: f64) -> f64 {
    1e-9 + 1e-12 * ub
}

/// The shared search core. `target = None` builds a full tree; otherwise
/// the loop stops when `target` settles. `banned` masks nodes/edges like
/// [`crate::dijkstra_filtered`]; `lm` enables ALT pruning toward `target`.
fn run(
    csr: &CsrGraph,
    st: &mut SearchState,
    source: NodeId,
    target: Option<NodeId>,
    cost: &mut dyn FnMut(EdgeId) -> f64,
    banned: Option<(&[bool], &[bool])>,
    lm: Option<&Landmarks>,
) -> Result<(), GraphError> {
    let n = csr.node_count();
    if source.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            index: source.0,
            nodes: n,
        });
    }
    st.begin(n);
    st.dist[source.index()] = 0.0;
    st.touched.push(source.0);
    st.heap.push(Reverse((OrdF64(0.0), source.0)));
    let alt = match (lm, target) {
        (Some(l), Some(t)) => Some((l, t)),
        _ => None,
    };
    while let Some(Reverse((OrdF64(d), nu))) = st.heap.pop() {
        if d > st.dist[nu as usize] {
            continue; // stale entry
        }
        if let Some(t) = target {
            if nu == t.0 {
                break; // target settled: its distance and chain are final
            }
        }
        if let Some((l, t)) = alt {
            // The node was pushed before the upper bound tightened; if the
            // landmark bound now rules it out, skip the expansion.
            let ub = st.dist[t.index()];
            if ub.is_finite() && d + l.lower_bound(NodeId(nu), t) > ub + prune_margin(ub) {
                continue;
            }
        }
        let (eids, tgts) = csr.neighbors_raw(NodeId(nu));
        for i in 0..eids.len() {
            let e = EdgeId(eids[i]);
            let c = cost(e);
            if c.is_nan() || c < 0.0 {
                return Err(GraphError::InvalidCost { edge: e });
            }
            if let Some((bn, be)) = banned {
                let (u, v) = csr.endpoints(e);
                if be.get(e.index()).copied().unwrap_or(false)
                    || bn.get(u.index()).copied().unwrap_or(false)
                    || bn.get(v.index()).copied().unwrap_or(false)
                {
                    continue;
                }
            }
            if c.is_infinite() {
                continue;
            }
            let m = tgts[i] as usize;
            let nd = d + c;
            if nd < st.dist[m] {
                if let Some((l, t)) = alt {
                    let ub = st.dist[t.index()];
                    if ub.is_finite()
                        && nd + l.lower_bound(NodeId(tgts[i]), t) > ub + prune_margin(ub)
                    {
                        continue;
                    }
                }
                if st.dist[m].is_infinite() {
                    st.touched.push(tgts[i]);
                }
                st.dist[m] = nd;
                st.prev_edge[m] = e.0;
                st.prev_node[m] = nu;
                st.heap.push(Reverse((OrdF64(nd), tgts[i])));
            }
        }
    }
    Ok(())
}

/// Full single-source tree into `st`, relaxation-for-relaxation identical
/// to [`crate::shortest_path_tree`]. Read results with
/// [`SearchState::distance`] / [`SearchState::path_to`].
pub fn csr_shortest_path_tree(
    csr: &CsrGraph,
    st: &mut SearchState,
    source: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Result<(), GraphError> {
    run(csr, st, source, None, &mut cost, None, None)
}

/// Cheapest `source → target` path, or `Ok(None)` if disconnected.
/// Stops as soon as `target` settles; the returned path (nodes, edges,
/// cost bits) is exactly what [`crate::dijkstra`] returns.
pub fn csr_dijkstra(
    csr: &CsrGraph,
    st: &mut SearchState,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Result<Option<Path>, GraphError> {
    if target.index() >= csr.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            index: target.0,
            nodes: csr.node_count(),
        });
    }
    run(csr, st, source, Some(target), &mut cost, None, None)?;
    Ok(st.path_to(target))
}

/// Like [`csr_dijkstra`] with node/edge masks (the
/// [`crate::dijkstra_filtered`] semantics: banned source → `Ok(None)`),
/// plus optional ALT pruning via a [`Landmarks`] table built over the
/// *same* cost function. Landmark bounds stay admissible under masks —
/// masking can only lengthen true distances — so the pruned search returns
/// the same path the unpruned one would.
#[allow(clippy::too_many_arguments)]
pub fn csr_dijkstra_filtered(
    csr: &CsrGraph,
    st: &mut SearchState,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
    banned_nodes: &[bool],
    banned_edges: &[bool],
    lm: Option<&Landmarks>,
) -> Result<Option<Path>, GraphError> {
    if banned_nodes.get(source.index()).copied().unwrap_or(false) {
        return Ok(None);
    }
    let in_bounds = target.index() < csr.node_count();
    run(
        csr,
        st,
        source,
        in_bounds.then_some(target),
        &mut cost,
        Some((banned_nodes, banned_edges)),
        lm,
    )?;
    if !in_bounds {
        return Err(GraphError::NodeOutOfBounds {
            index: target.0,
            nodes: csr.node_count(),
        });
    }
    Ok(st.path_to(target))
}

/// Bidirectional Dijkstra: forward from `source` and backward from
/// `target` (the graph is undirected, so both directions relax the same
/// half-edges), alternating on the cheaper frontier and stopping once the
/// frontiers prove no cheaper meeting exists.
///
/// The returned cost is the exact minimum. The *path* is one cheapest
/// path, but equal-cost ties may resolve differently than
/// [`csr_dijkstra`], and the cost is summed as `forward half + backward
/// half` (a different float association than a left-to-right fold). Use
/// this engine for cost-only questions — e.g. "is there a strictly
/// cheaper alternate?" over integer-valued risk costs, where every
/// summation order is exact.
pub fn bidirectional_dijkstra(
    csr: &CsrGraph,
    fwd: &mut SearchState,
    bwd: &mut SearchState,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Result<Option<Path>, GraphError> {
    let n = csr.node_count();
    if target.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            index: target.0,
            nodes: n,
        });
    }
    if source.index() >= n {
        return Err(GraphError::NodeOutOfBounds {
            index: source.0,
            nodes: n,
        });
    }
    if source == target {
        return Ok(Some(Path {
            nodes: vec![source],
            edges: Vec::new(),
            cost: 0.0,
        }));
    }
    fwd.begin(n);
    bwd.begin(n);
    fwd.dist[source.index()] = 0.0;
    fwd.touched.push(source.0);
    fwd.heap.push(Reverse((OrdF64(0.0), source.0)));
    bwd.dist[target.index()] = 0.0;
    bwd.touched.push(target.0);
    bwd.heap.push(Reverse((OrdF64(0.0), target.0)));

    let mut best = f64::INFINITY;
    let mut meet: Option<u32> = None;
    loop {
        let top = |h: &BinaryHeap<Reverse<(OrdF64, u32)>>| {
            h.peek().map_or(f64::INFINITY, |Reverse((OrdF64(d), _))| *d)
        };
        let (tf, tb) = (top(&fwd.heap), top(&bwd.heap));
        // No meeting can beat `best` once the frontiers together exceed it
        // (covers both-heaps-empty too: INFINITY >= anything).
        if tf + tb >= best {
            break;
        }
        let (this, other) = if tf <= tb {
            (&mut *fwd, &mut *bwd)
        } else {
            (&mut *bwd, &mut *fwd)
        };
        let Some(Reverse((OrdF64(d), nu))) = this.heap.pop() else {
            break;
        };
        if d > this.dist[nu as usize] {
            continue; // stale entry
        }
        let (eids, tgts) = csr.neighbors_raw(NodeId(nu));
        for i in 0..eids.len() {
            let e = EdgeId(eids[i]);
            let c = cost(e);
            if c.is_nan() || c < 0.0 {
                return Err(GraphError::InvalidCost { edge: e });
            }
            if c.is_infinite() {
                continue;
            }
            let m = tgts[i] as usize;
            let nd = d + c;
            // Meeting check against the opposite frontier.
            let through = nd + other.dist[m];
            if through < best {
                best = through;
                meet = Some(tgts[i]);
            }
            if nd < this.dist[m] {
                if this.dist[m].is_infinite() {
                    this.touched.push(tgts[i]);
                }
                this.dist[m] = nd;
                this.prev_edge[m] = e.0;
                this.prev_node[m] = nu;
                this.heap.push(Reverse((OrdF64(nd), tgts[i])));
            }
        }
    }
    let Some(meet) = meet else {
        return Ok(None);
    };
    // Forward half source→meet, then the backward chain meet→target.
    let Some(mut path) = fwd.path_to(NodeId(meet)) else {
        return Ok(None);
    };
    let mut cur = meet as usize;
    while bwd.prev_edge[cur] != NONE {
        path.edges.push(EdgeId(bwd.prev_edge[cur]));
        path.nodes.push(NodeId(bwd.prev_node[cur]));
        cur = bwd.prev_node[cur] as usize;
    }
    path.cost = best;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, dijkstra_filtered, MultiGraph};

    /// a(0) -1- b(1) -1- c(2) -1- d(3); a -5- d direct.
    fn g() -> MultiGraph<(), f64> {
        let mut g = MultiGraph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ns[0], ns[1], 1.0);
        g.add_edge(ns[1], ns[2], 1.0);
        g.add_edge(ns[2], ns[3], 1.0);
        g.add_edge(ns[0], ns[3], 5.0);
        g
    }

    #[test]
    fn csr_dijkstra_matches_multigraph_dijkstra() {
        let g = g();
        let csr = g.to_csr();
        let mut st = SearchState::new();
        for s in 0..4u32 {
            for t in 0..4u32 {
                let a = dijkstra(&g, NodeId(s), NodeId(t), |e| *g.edge(e)).unwrap();
                let b = csr_dijkstra(&csr, &mut st, NodeId(s), NodeId(t), |e| *g.edge(e))
                    .unwrap();
                assert_eq!(a, b, "{s}->{t}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_queries() {
        let g = g();
        let csr = g.to_csr();
        let mut st = SearchState::new();
        let first = csr_dijkstra(&csr, &mut st, NodeId(0), NodeId(3), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        // A second, unrelated query must not see the first one's state.
        let second = csr_dijkstra(&csr, &mut st, NodeId(3), NodeId(0), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(first.cost, second.cost);
        let again = csr_dijkstra(&csr, &mut st, NodeId(0), NodeId(3), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn filtered_matches_dijkstra_filtered() {
        let g = g();
        let csr = g.to_csr();
        let mut st = SearchState::new();
        let mut banned_edges = vec![false; g.edge_count()];
        banned_edges[3] = true;
        let banned_nodes = vec![false; g.node_count()];
        let a = dijkstra_filtered(
            &g,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &banned_nodes,
            &banned_edges,
        )
        .unwrap();
        let b = csr_dijkstra_filtered(
            &csr,
            &mut st,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &banned_nodes,
            &banned_edges,
            None,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn filtered_banned_source_is_none_and_oob_targets_error() {
        let g = g();
        let csr = g.to_csr();
        let mut st = SearchState::new();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[0] = true;
        let r = csr_dijkstra_filtered(
            &csr,
            &mut st,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &banned_nodes,
            &vec![false; g.edge_count()],
            None,
        )
        .unwrap();
        assert!(r.is_none());
        let r = csr_dijkstra(&csr, &mut st, NodeId(0), NodeId(42), |e| *g.edge(e));
        assert!(matches!(r, Err(GraphError::NodeOutOfBounds { .. })));
        let r = csr_dijkstra(&csr, &mut st, NodeId(42), NodeId(0), |e| *g.edge(e));
        assert!(matches!(r, Err(GraphError::NodeOutOfBounds { .. })));
    }

    #[test]
    fn invalid_costs_error() {
        let g = g();
        let csr = g.to_csr();
        let mut st = SearchState::new();
        let r = csr_dijkstra(&csr, &mut st, NodeId(0), NodeId(3), |_| -1.0);
        assert!(matches!(r, Err(GraphError::InvalidCost { .. })));
        let mut bwd = SearchState::new();
        let r = bidirectional_dijkstra(&csr, &mut st, &mut bwd, NodeId(0), NodeId(3), |_| {
            f64::NAN
        });
        assert!(matches!(r, Err(GraphError::InvalidCost { .. })));
    }

    #[test]
    fn bidirectional_finds_exact_minimum() {
        let g = g();
        let csr = g.to_csr();
        let (mut fwd, mut bwd) = (SearchState::new(), SearchState::new());
        for s in 0..4u32 {
            for t in 0..4u32 {
                let uni = dijkstra(&g, NodeId(s), NodeId(t), |e| *g.edge(e)).unwrap();
                let bi = bidirectional_dijkstra(
                    &csr,
                    &mut fwd,
                    &mut bwd,
                    NodeId(s),
                    NodeId(t),
                    |e| *g.edge(e),
                )
                .unwrap();
                match (uni, bi) {
                    (Some(u), Some(b)) => {
                        assert!((u.cost - b.cost).abs() < 1e-9, "{s}->{t}");
                        assert!(b.is_valid_in(&g), "{s}->{t}: {:?}", b.nodes);
                        assert_eq!(b.source(), NodeId(s));
                        assert_eq!(b.target(), NodeId(t));
                    }
                    (None, None) => {}
                    (u, b) => panic!("{s}->{t}: {u:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn bidirectional_handles_disconnection() {
        let mut g = g();
        let lonely = g.add_node(());
        let csr = g.to_csr();
        let (mut fwd, mut bwd) = (SearchState::new(), SearchState::new());
        let r =
            bidirectional_dijkstra(&csr, &mut fwd, &mut bwd, NodeId(0), lonely, |e| *g.edge(e))
                .unwrap();
        assert!(r.is_none());
    }
}
