//! Dijkstra shortest paths with caller-supplied edge costs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{EdgeId, GraphError, MultiGraph, NodeId, Path};

/// A total-ordering wrapper for finite non-negative `f64` costs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Result of a single-source search: distances and predecessor links.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    /// `dist[n]` = cost of the cheapest path source→n, or `f64::INFINITY`.
    dist: Vec<f64>,
    /// `prev[n]` = (edge into n, previous node) on a cheapest path.
    prev: Vec<Option<(EdgeId, NodeId)>>,
}

impl ShortestPathTree {
    /// The search source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest path to `n`. `f64::INFINITY` if unreachable —
    /// including nodes outside the tree's graph, which a caller probing
    /// with foreign ids should see as "unreachable", not a panic.
    pub fn distance(&self, n: NodeId) -> f64 {
        self.dist.get(n.index()).copied().unwrap_or(f64::INFINITY)
    }

    /// Whether `n` is reachable from the source (out-of-bounds ids are not).
    pub fn reachable(&self, n: NodeId) -> bool {
        self.distance(n).is_finite()
    }

    /// Reconstructs the cheapest path to `target`, or `None` if unreachable
    /// (including out-of-bounds targets).
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        let cost = self.distance(target);
        if !cost.is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((e, p)) = self.prev.get(cur.index()).copied().flatten() {
            edges.push(e);
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost })
    }
}

/// Runs Dijkstra from `source` over all edges, using `cost` per edge.
///
/// Costs must be non-negative and finite; otherwise an error is returned the
/// first time an offending edge is relaxed. `f64::INFINITY` is allowed and
/// treated as "edge absent".
pub fn shortest_path_tree<N, E>(
    g: &MultiGraph<N, E>,
    source: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Result<ShortestPathTree, GraphError> {
    if source.index() >= g.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            index: source.0,
            nodes: g.node_count(),
        });
    }
    let mut dist = vec![f64::INFINITY; g.node_count()];
    let mut prev: Vec<Option<(EdgeId, NodeId)>> = vec![None; g.node_count()];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(d), n))) = heap.pop() {
        if d > dist[n.index()] {
            continue; // stale entry
        }
        for (e, m) in g.neighbors(n) {
            let c = cost(e);
            if c.is_nan() || c < 0.0 {
                return Err(GraphError::InvalidCost { edge: e });
            }
            if c.is_infinite() {
                continue;
            }
            let nd = d + c;
            if nd < dist[m.index()] {
                dist[m.index()] = nd;
                prev[m.index()] = Some((e, n));
                heap.push(Reverse((OrdF64(nd), m)));
            }
        }
    }
    Ok(ShortestPathTree { source, dist, prev })
}

/// Cheapest path from `source` to `target`, or `Ok(None)` if disconnected.
pub fn dijkstra<N, E>(
    g: &MultiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
) -> Result<Option<Path>, GraphError> {
    if target.index() >= g.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            index: target.0,
            nodes: g.node_count(),
        });
    }
    Ok(shortest_path_tree(g, source, cost)?.path_to(target))
}

/// Like [`dijkstra`], but with explicit node and edge masks: banned nodes
/// and edges are skipped entirely. Used by Yen's algorithm and by the
/// mitigation frameworks to search "all conduits except …".
pub fn dijkstra_filtered<N, E>(
    g: &MultiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Result<Option<Path>, GraphError> {
    if banned_nodes.get(source.index()).copied().unwrap_or(false) {
        return Ok(None);
    }
    let masked = |e: EdgeId, c: f64, g: &MultiGraph<N, E>| {
        let (u, v) = g.endpoints(e);
        if banned_edges.get(e.index()).copied().unwrap_or(false)
            || banned_nodes.get(u.index()).copied().unwrap_or(false)
            || banned_nodes.get(v.index()).copied().unwrap_or(false)
        {
            f64::INFINITY
        } else {
            c
        }
    };
    let mut err = None;
    let tree = shortest_path_tree(g, source, |e| {
        let c = cost(e);
        if c.is_nan() || c < 0.0 {
            err = Some(GraphError::InvalidCost { edge: e });
            return f64::INFINITY;
        }
        masked(e, c, g)
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    if target.index() >= g.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            index: target.0,
            nodes: g.node_count(),
        });
    }
    Ok(tree.path_to(target))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a(0) -1- b(1) -1- c(2) -1- d(3); a -5- d direct; parallel cheap a-d.
    fn g() -> MultiGraph<(), f64> {
        let mut g = MultiGraph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ns[0], ns[1], 1.0);
        g.add_edge(ns[1], ns[2], 1.0);
        g.add_edge(ns[2], ns[3], 1.0);
        g.add_edge(ns[0], ns[3], 5.0);
        g
    }

    #[test]
    fn finds_cheapest_path() {
        let g = g();
        let p = dijkstra(&g, NodeId(0), NodeId(3), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(p.cost, 3.0);
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(p.is_valid_in(&g));
    }

    #[test]
    fn parallel_edge_choice_prefers_cheaper() {
        let mut g = g();
        let cheap = g.add_edge(NodeId(0), NodeId(3), 0.5);
        let p = dijkstra(&g, NodeId(0), NodeId(3), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(p.cost, 0.5);
        assert_eq!(p.edges, vec![cheap]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = g();
        let lonely = g.add_node(());
        let p = dijkstra(&g, NodeId(0), lonely, |e| *g.edge(e)).unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn source_to_self_is_trivial() {
        let g = g();
        let p = dijkstra(&g, NodeId(2), NodeId(2), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn negative_cost_is_rejected() {
        let g = g();
        let r = dijkstra(&g, NodeId(0), NodeId(3), |_| -1.0);
        assert!(matches!(r, Err(GraphError::InvalidCost { .. })));
        let r = dijkstra(&g, NodeId(0), NodeId(3), |_| f64::NAN);
        assert!(matches!(r, Err(GraphError::InvalidCost { .. })));
    }

    #[test]
    fn infinite_cost_masks_edge() {
        let g = g();
        // Mask the direct edge: path must go the long way even if direct were cheap.
        let p = dijkstra(&g, NodeId(0), NodeId(3), |e| {
            if e == EdgeId(3) {
                f64::INFINITY
            } else {
                *g.edge(e)
            }
        })
        .unwrap()
        .unwrap();
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn out_of_bounds_source_errors() {
        let g = g();
        assert!(shortest_path_tree(&g, NodeId(42), |_| 1.0).is_err());
        assert!(dijkstra(&g, NodeId(0), NodeId(42), |_| 1.0).is_err());
    }

    #[test]
    fn tree_distances_are_consistent() {
        let g = g();
        let t = shortest_path_tree(&g, NodeId(0), |e| *g.edge(e)).unwrap();
        assert_eq!(t.distance(NodeId(0)), 0.0);
        assert_eq!(t.distance(NodeId(2)), 2.0);
        assert_eq!(t.distance(NodeId(3)), 3.0);
        assert!(t.reachable(NodeId(3)));
        let p = t.path_to(NodeId(2)).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.target(), NodeId(2));
    }

    #[test]
    fn filtered_banned_node_forces_detour() {
        let g = g();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[1] = true; // ban b: must take the direct a-d edge
        let p = dijkstra_filtered(
            &g,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &banned_nodes,
            &vec![false; g.edge_count()],
        )
        .unwrap()
        .unwrap();
        assert_eq!(p.cost, 5.0);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn filtered_banned_source_is_none() {
        let g = g();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[0] = true;
        let p = dijkstra_filtered(
            &g,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &banned_nodes,
            &vec![false; g.edge_count()],
        )
        .unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn filtered_banned_edges_respected() {
        let g = g();
        let mut banned_edges = vec![false; g.edge_count()];
        banned_edges[3] = true; // ban direct a-d
        banned_edges[1] = true; // ban b-c: now unreachable
        let p = dijkstra_filtered(
            &g,
            NodeId(0),
            NodeId(3),
            |e| *g.edge(e),
            &vec![false; g.node_count()],
            &banned_edges,
        )
        .unwrap();
        assert!(p.is_none());
    }
}
