//! Compact CSR (compressed sparse row) adjacency.
//!
//! [`MultiGraph`] stores adjacency as one heap-allocated `Vec` per node —
//! fine for construction, but every Dijkstra relaxation chases a pointer
//! into a separate allocation. [`CsrGraph`] freezes that adjacency into
//! three flat `u32` arrays (offsets, neighbour targets, incident edge ids)
//! plus a flat endpoint table, so a whole search touches a handful of
//! contiguous allocations. Node and edge payloads stay behind in the
//! `MultiGraph` arena; the CSR view carries topology only, which is all
//! the search stack needs (costs come from caller closures keyed by
//! [`EdgeId`]).
//!
//! Half-edge order is exactly the `MultiGraph` adjacency order, so every
//! search over the CSR view relaxes edges in the same sequence as the
//! pointer-chasing original — the byte-identity arguments in DESIGN.md §10
//! lean on that.

use crate::{EdgeId, MultiGraph, NodeId};

/// A frozen, cache-friendly view of a [`MultiGraph`]'s topology.
///
/// Build one with [`MultiGraph::to_csr`] (or [`CsrGraph::from_multigraph`])
/// and share it read-only across as many searches as needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[n]..offsets[n + 1]` indexes node `n`'s half-edges.
    offsets: Vec<u32>,
    /// Neighbour node id per half-edge.
    targets: Vec<u32>,
    /// Incident edge id per half-edge.
    edge_ids: Vec<u32>,
    /// `(u, v)` endpoint pair per edge, in `add_edge` order.
    endpoints: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// Flattens `g`'s adjacency into CSR form, preserving the half-edge
    /// order exactly (self-loops appear once, as in the source adjacency).
    pub fn from_multigraph<N, E>(g: &MultiGraph<N, E>) -> CsrGraph {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut edge_ids = Vec::new();
        offsets.push(0);
        for node in g.node_ids() {
            for (e, m) in g.neighbors(node) {
                edge_ids.push(e.0);
                targets.push(m.0);
            }
            offsets.push(targets.len() as u32);
        }
        let endpoints = g
            .edge_ids()
            .map(|e| {
                let (u, v) = g.endpoints(e);
                (u.0, v.0)
            })
            .collect();
        CsrGraph {
            offsets,
            targets,
            edge_ids,
            endpoints,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over `(edge, neighbour)` pairs incident to `n`, in the same
    /// order as [`MultiGraph::neighbors`].
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let (edges, targets) = self.neighbors_raw(n);
        edges
            .iter()
            .zip(targets)
            .map(|(&e, &t)| (EdgeId(e), NodeId(t)))
    }

    /// The raw half-edge slices for node `n`: `(edge ids, targets)`.
    #[inline]
    pub(crate) fn neighbors_raw(&self, n: NodeId) -> (&[u32], &[u32]) {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        (&self.edge_ids[lo..hi], &self.targets[lo..hi])
    }

    /// Degree of `n` (self-loops count once).
    pub fn degree(&self, n: NodeId) -> usize {
        (self.offsets[n.index() + 1] - self.offsets[n.index()]) as usize
    }

    /// The two endpoints of edge `e` (in insertion order).
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v) = self.endpoints[e.index()];
        (NodeId(u), NodeId(v))
    }

    /// Given edge `e` incident to node `n`, the endpoint that is not `n`.
    /// For self-loops returns `n` itself.
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let (u, v) = self.endpoints(e);
        if u == n {
            v
        } else {
            u
        }
    }
}

impl<N, E> MultiGraph<N, E> {
    /// Freezes this graph's topology into a [`CsrGraph`] for the search
    /// stack. Payloads stay in this arena; costs reach searches through
    /// closures keyed by [`EdgeId`].
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_multigraph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> MultiGraph<&'static str, f64> {
        let mut g = MultiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(b, d, 2.0);
        g.add_edge(a, c, 2.5);
        g.add_edge(c, d, 1.0);
        g.add_edge(a, b, 9.0); // parallel edge
        g.add_edge(d, d, 0.5); // self-loop
        g
    }

    #[test]
    fn csr_mirrors_multigraph_adjacency() {
        let g = diamond();
        let csr = g.to_csr();
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for n in g.node_ids() {
            assert_eq!(csr.degree(n), g.degree(n));
            let a: Vec<_> = g.neighbors(n).collect();
            let b: Vec<_> = csr.neighbors(n).collect();
            assert_eq!(a, b, "adjacency order diverged at {n:?}");
        }
        for e in g.edge_ids() {
            assert_eq!(csr.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn self_loop_appears_once() {
        let g = diamond();
        let csr = g.to_csr();
        let d = NodeId(3);
        let loops = csr.neighbors(d).filter(|&(_, m)| m == d).count();
        assert_eq!(loops, 1);
        assert_eq!(csr.other_endpoint(EdgeId(5), d), d);
    }

    #[test]
    fn empty_graph_is_empty_csr() {
        let g: MultiGraph<(), ()> = MultiGraph::new();
        let csr = g.to_csr();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
