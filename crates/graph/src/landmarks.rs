//! ALT landmark tables: precomputed distance rows that lower-bound any
//! point-to-point distance via the triangle inequality.
//!
//! For a landmark `L` and undirected distances `d`, the triangle
//! inequality gives `d(n, t) >= |d(L, n) - d(L, t)|`; the bound over a
//! set of landmarks is the max over rows. The search core uses it purely
//! as a *pruning* bound against the best-known target distance — never to
//! reorder the heap — so the settled order, and with it the returned
//! path, is unchanged (DESIGN.md §10).
//!
//! Landmarks are chosen by farthest-point selection: start from node 0,
//! repeatedly add the node farthest from the current set (preferring
//! uncovered components), which spreads landmarks to the graph periphery
//! where the bounds are tightest.
//!
//! Distance rows are serialisable (frozen into `intertubes-snapshot/v2`
//! containers). Unreachable entries are stored as `-1.0` rather than
//! `f64::INFINITY` because JSON cannot represent infinities.

use serde::{Deserialize, Serialize};

use crate::{CsrGraph, EdgeId, GraphError, NodeId, SearchState};

/// Default landmark count: enough rows to tighten bounds on a
/// few-hundred-node conduit graph without bloating snapshots.
pub const DEFAULT_LANDMARK_COUNT: usize = 16;

/// Stored sentinel for "unreachable from this landmark".
const UNREACHABLE: f64 = -1.0;

/// Precomputed landmark distance tables for a fixed graph + cost function.
///
/// Row `i` holds `d(landmark_i, n)` for every node `n`, flattened into
/// `dist[i * node_count + n]`. Bounds from a table are only valid for
/// searches over the *same* graph and the *same* edge costs it was built
/// with; masked (filtered) searches are fine, because masking can only
/// lengthen distances and the bound stays admissible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Landmarks {
    node_count: u32,
    /// Chosen landmark node ids, in selection order.
    nodes: Vec<u32>,
    /// Flattened distance rows, `-1.0` meaning unreachable.
    dist: Vec<f64>,
}

impl Landmarks {
    /// Builds up to `count` landmark tables over `csr` with the given
    /// edge costs, via deterministic farthest-point selection.
    ///
    /// Errors only if `cost` yields NaN or a negative value. An empty
    /// graph produces an empty (but valid) table.
    pub fn build(
        csr: &CsrGraph,
        count: usize,
        mut cost: impl FnMut(EdgeId) -> f64,
    ) -> Result<Landmarks, GraphError> {
        let n = csr.node_count();
        let mut lm = Landmarks {
            node_count: n as u32,
            nodes: Vec::new(),
            dist: Vec::new(),
        };
        if n == 0 || count == 0 {
            return Ok(lm);
        }
        let mut st = SearchState::new();
        // min over existing landmark rows of d(L, n); INFINITY = uncovered.
        let mut min_dist = vec![f64::INFINITY; n];
        // Seed the selection from node 0: its farthest reachable node is
        // the first landmark (or node 0 itself in a singleton component).
        crate::csr_shortest_path_tree(csr, &mut st, NodeId(0), &mut cost)?;
        let mut next = (0..n as u32)
            .filter(|&i| st.distance(NodeId(i)).is_finite())
            .max_by(|&a, &b| {
                st.distance(NodeId(a))
                    .total_cmp(&st.distance(NodeId(b)))
                    .then(b.cmp(&a)) // prefer the smaller id on ties
            })
            .unwrap_or(0);
        while lm.nodes.len() < count.min(n) {
            crate::csr_shortest_path_tree(csr, &mut st, NodeId(next), &mut cost)?;
            lm.nodes.push(next);
            for i in 0..n {
                let d = st.distance(NodeId(i as u32));
                lm.dist.push(if d.is_finite() { d } else { UNREACHABLE });
                if d < min_dist[i] {
                    min_dist[i] = d;
                }
            }
            // Next landmark: an uncovered node if any component remains
            // unseen (smallest id), else the node farthest from the set.
            let uncovered = (0..n as u32).find(|&i| min_dist[i as usize].is_infinite());
            next = match uncovered {
                Some(i) => i,
                None => {
                    let far = (0..n as u32).max_by(|&a, &b| {
                        min_dist[a as usize]
                            .total_cmp(&min_dist[b as usize])
                            .then(b.cmp(&a))
                    });
                    match far {
                        Some(i) if min_dist[i as usize] > 0.0 => i,
                        _ => break, // every node is a landmark-distance 0
                    }
                }
            };
        }
        Ok(lm)
    }

    /// Number of landmarks in the table.
    pub fn count(&self) -> usize {
        self.nodes.len()
    }

    /// The chosen landmark node ids, in selection order.
    pub fn landmark_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|&i| NodeId(i))
    }

    /// Number of nodes in the graph the table was built over.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Admissible lower bound on `d(n, t)`: never exceeds the true
    /// shortest-path distance under the build costs (or any edge-masked
    /// restriction of them). Returns `f64::INFINITY` when some landmark
    /// proves `n` and `t` lie in different components, and `0.0` when no
    /// landmark can separate them (including out-of-bounds ids).
    #[inline]
    pub fn lower_bound(&self, n: NodeId, t: NodeId) -> f64 {
        let nc = self.node_count as usize;
        if n.index() >= nc || t.index() >= nc {
            return 0.0;
        }
        let mut best = 0.0f64;
        for row in self.dist.chunks_exact(nc.max(1)) {
            let (dn, dt) = (row[n.index()], row[t.index()]);
            match (dn < 0.0, dt < 0.0) {
                (false, false) => {
                    let b = (dn - dt).abs();
                    if b > best {
                        best = b;
                    }
                }
                // One endpoint reachable from the landmark, the other not:
                // they sit in different components, so d(n, t) = INFINITY.
                (true, false) | (false, true) => return f64::INFINITY,
                (true, true) => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra, MultiGraph};

    fn line(n: u32) -> MultiGraph<(), f64> {
        let mut g = MultiGraph::new();
        let ns: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for w in ns.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        g
    }

    #[test]
    fn bounds_are_admissible_and_tight_on_a_line() {
        let g = line(6);
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 4, |e| *g.edge(e)).unwrap();
        assert!(lm.count() >= 2);
        for s in 0..6u32 {
            for t in 0..6u32 {
                let truth = dijkstra(&g, NodeId(s), NodeId(t), |e| *g.edge(e))
                    .unwrap()
                    .map_or(f64::INFINITY, |p| p.cost);
                let lb = lm.lower_bound(NodeId(s), NodeId(t));
                assert!(lb <= truth + 1e-12, "{s}->{t}: bound {lb} > true {truth}");
            }
        }
        // On a line with endpoints as landmarks the bound is exact.
        assert_eq!(lm.lower_bound(NodeId(0), NodeId(5)), 5.0);
    }

    #[test]
    fn disconnected_components_each_get_a_landmark() {
        let mut g = line(3);
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 2.0);
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 8, |e| *g.edge(e)).unwrap();
        let picked: Vec<u32> = lm.landmark_nodes().map(|n| n.0).collect();
        assert!(
            picked.iter().any(|&i| i >= 3),
            "second component uncovered: {picked:?}"
        );
        // Cross-component bound is provably infinite.
        assert_eq!(lm.lower_bound(NodeId(0), a), f64::INFINITY);
        assert_eq!(lm.lower_bound(a, b), 2.0);
    }

    #[test]
    fn serde_round_trip_preserves_unreachable_sentinels() {
        let mut g = line(3);
        g.add_node(()); // isolated
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 2, |e| *g.edge(e)).unwrap();
        let json = serde_json::to_string(&lm).unwrap();
        let back: Landmarks = serde_json::from_str(&json).unwrap();
        assert_eq!(lm, back);
        assert_eq!(back.lower_bound(NodeId(0), NodeId(3)), f64::INFINITY);
    }

    #[test]
    fn empty_graph_and_zero_count_are_fine() {
        let g: MultiGraph<(), f64> = MultiGraph::new();
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 16, |e| *g.edge(e)).unwrap();
        assert_eq!(lm.count(), 0);
        assert_eq!(lm.lower_bound(NodeId(0), NodeId(1)), 0.0);
        let g2 = line(4);
        let lm2 = Landmarks::build(&g2.to_csr(), 0, |e| *g2.edge(e)).unwrap();
        assert_eq!(lm2.count(), 0);
        assert_eq!(lm2.lower_bound(NodeId(0), NodeId(3)), 0.0);
    }
}
