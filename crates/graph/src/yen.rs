//! Yen's k-shortest loopless paths.
//!
//! Used for the "average delay across all physical paths" series in the
//! paper's Fig. 12, where multiple existing conduit paths join a city pair.
//!
//! The algorithm runs over the frozen [`CsrGraph`] view with a reusable
//! [`YenWorkspace`]: the spur searches share one [`SearchState`] scratch,
//! and the ban masks are cleared via touched-lists instead of being
//! reallocated per spur. Results are identical to the original
//! `MultiGraph` implementation — same paths, same order, same cost bits —
//! only the per-query allocation churn is gone (DESIGN.md §10).

use crate::{csr_dijkstra_filtered, CsrGraph, EdgeId, GraphError, Landmarks};
use crate::{MultiGraph, NodeId, Path, SearchState};

/// Reusable scratch for [`yen_k_shortest_csr`]: the spur-search state plus
/// ban masks with touched-lists for O(dirty) clearing.
///
/// One workspace serves any number of sequential queries, even over
/// different graphs (masks regrow as needed).
#[derive(Debug, Default)]
pub struct YenWorkspace {
    st: SearchState,
    banned_nodes: Vec<bool>,
    banned_edges: Vec<bool>,
    set_nodes: Vec<u32>,
    set_edges: Vec<u32>,
}

impl YenWorkspace {
    /// A fresh workspace; buffers grow lazily to the largest graph used.
    pub fn new() -> YenWorkspace {
        YenWorkspace::default()
    }

    fn begin(&mut self, nodes: usize, edges: usize) {
        if self.banned_nodes.len() < nodes {
            self.banned_nodes.resize(nodes, false);
        }
        if self.banned_edges.len() < edges {
            self.banned_edges.resize(edges, false);
        }
        self.clear_masks();
    }

    fn clear_masks(&mut self) {
        for &i in &self.set_nodes {
            self.banned_nodes[i as usize] = false;
        }
        for &i in &self.set_edges {
            self.banned_edges[i as usize] = false;
        }
        self.set_nodes.clear();
        self.set_edges.clear();
    }

    fn ban_node(&mut self, n: NodeId) {
        if !self.banned_nodes[n.index()] {
            self.banned_nodes[n.index()] = true;
            self.set_nodes.push(n.0);
        }
    }

    fn ban_edge(&mut self, e: EdgeId) {
        if !self.banned_edges[e.index()] {
            self.banned_edges[e.index()] = true;
            self.set_edges.push(e.0);
        }
    }
}

/// Returns up to `k` cheapest *loopless* paths from `source` to `target`,
/// sorted by ascending cost.
///
/// Parallel edges are handled correctly: two paths through the same node
/// sequence but different parallel conduits are distinct.
///
/// `cost` must be non-negative and finite for present edges
/// (`f64::INFINITY` masks an edge, as in [`crate::dijkstra`]).
pub fn yen_k_shortest<N, E>(
    g: &MultiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: impl Fn(EdgeId) -> f64,
) -> Result<Vec<Path>, GraphError> {
    let csr = g.to_csr();
    let mut ws = YenWorkspace::new();
    yen_k_shortest_csr(&csr, &mut ws, source, target, k, cost, None)
}

/// [`yen_k_shortest`] over a prebuilt [`CsrGraph`] with reusable scratch
/// and optional ALT pruning of the spur searches.
///
/// `lm`, when given, must have been built over the same graph and cost
/// function (spur-search ban masks are fine — masking only lengthens
/// distances, so the landmark bound stays admissible).
///
/// Note on invalid costs: searches stop as soon as the target settles, so
/// a NaN/negative cost on an edge the search never reaches is not
/// observed; the original full-tree engine would have reported it.
/// Well-formed cost functions are unaffected.
pub fn yen_k_shortest_csr(
    csr: &CsrGraph,
    ws: &mut YenWorkspace,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: impl Fn(EdgeId) -> f64,
    lm: Option<&Landmarks>,
) -> Result<Vec<Path>, GraphError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    ws.begin(csr.node_count(), csr.edge_count());
    let first = match csr_dijkstra_filtered(
        csr,
        &mut ws.st,
        source,
        target,
        &cost,
        &ws.banned_nodes,
        &ws.banned_edges,
        lm,
    )? {
        Some(p) => p,
        None => return Ok(Vec::new()),
    };
    let mut accepted: Vec<Path> = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    'outer: while accepted.len() < k {
        // Each node of the last accepted path except the target is a spur.
        for j in 0..accepted[accepted.len() - 1].nodes.len() - 1 {
            let last = &accepted[accepted.len() - 1];
            let spur_node = last.nodes[j];
            let root_nodes = &last.nodes[..=j];
            let root_edges = &last.edges[..j];

            ws.clear_masks();
            let mut to_ban_edges: Vec<EdgeId> = Vec::new();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > j
                    && p.nodes.len() > j
                    && p.nodes[..=j] == *root_nodes
                    && p.edges[..j] == *root_edges
                {
                    to_ban_edges.push(p.edges[j]);
                }
            }
            // Ban the root's interior nodes so spur paths are loopless.
            let to_ban_nodes: Vec<NodeId> = root_nodes[..j].to_vec();
            for e in to_ban_edges {
                ws.ban_edge(e);
            }
            for n in to_ban_nodes {
                ws.ban_node(n);
            }

            let spur = csr_dijkstra_filtered(
                csr,
                &mut ws.st,
                spur_node,
                target,
                &cost,
                &ws.banned_nodes,
                &ws.banned_edges,
                lm,
            )?;
            if let Some(spur) = spur {
                let last = &accepted[accepted.len() - 1];
                let root_nodes = &last.nodes[..=j];
                let root_edges = &last.edges[..j];
                let root_cost: f64 = root_edges.iter().map(|e| cost(*e)).sum();
                let mut nodes = Vec::with_capacity(root_nodes.len() + spur.nodes.len() - 1);
                nodes.extend_from_slice(root_nodes);
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut edges = Vec::with_capacity(root_edges.len() + spur.edges.len());
                edges.extend_from_slice(root_edges);
                edges.extend_from_slice(&spur.edges);
                let cand = Path {
                    nodes,
                    edges,
                    cost: root_cost + spur.cost,
                };
                let dup = accepted
                    .iter()
                    .chain(candidates.iter())
                    .any(|p| p.edges == cand.edges);
                if !dup {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break 'outer;
        }
        // Pop the cheapest candidate into the accepted list.
        let Some((best_idx, _)) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx));
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic Yen example topology plus a parallel edge.
    ///
    /// c(0) -3- d(1) -4- f(2)
    /// c -2- e(3) -1- d ; e -2- f ; e -3- g(4) ; f -2- h(5) ; g -2- h ; d -1- g(absent)
    fn g() -> MultiGraph<&'static str, f64> {
        let mut g = MultiGraph::new();
        let c = g.add_node("c");
        let d = g.add_node("d");
        let f = g.add_node("f");
        let e = g.add_node("e");
        let gg = g.add_node("g");
        let h = g.add_node("h");
        g.add_edge(c, d, 3.0);
        g.add_edge(d, f, 4.0);
        g.add_edge(c, e, 2.0);
        g.add_edge(e, d, 1.0);
        g.add_edge(e, f, 2.0);
        g.add_edge(e, gg, 3.0);
        g.add_edge(f, h, 2.0);
        g.add_edge(gg, h, 2.0);
        g
    }

    #[test]
    fn finds_k_paths_in_ascending_cost() {
        let g = g();
        // c(0) → h(5)
        let ps = yen_k_shortest(&g, NodeId(0), NodeId(5), 4, |e| *g.edge(e)).unwrap();
        assert!(ps.len() >= 3, "found {}", ps.len());
        for w in ps.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
        // Best: c-e-f-h = 2+2+2 = 6.
        assert!((ps[0].cost - 6.0).abs() < 1e-9, "best cost {}", ps[0].cost);
        for p in &ps {
            assert!(p.is_valid_in(&g));
            assert!(p.is_simple(), "path not loopless: {:?}", p.nodes);
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(5));
        }
        // All distinct edge sequences.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].edges, ps[j].edges);
            }
        }
    }

    #[test]
    fn parallel_edges_yield_distinct_paths() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let ps = yen_k_shortest(&g, a, b, 5, |e| *g.edge(e)).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].cost, 1.0);
        assert_eq!(ps[1].cost, 2.0);
        assert_ne!(ps[0].edges, ps[1].edges);
    }

    #[test]
    fn k_zero_and_disconnected() {
        let g = g();
        assert!(yen_k_shortest(&g, NodeId(0), NodeId(5), 0, |e| *g.edge(e))
            .unwrap()
            .is_empty());
        let mut g2 = g.clone();
        let lonely = g2.add_node("x");
        assert!(yen_k_shortest(&g2, NodeId(0), lonely, 3, |e| *g2.edge(e))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn exhausts_when_fewer_than_k_paths_exist() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        let ps = yen_k_shortest(&g, a, b, 10, |e| *g.edge(e)).unwrap();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn k_one_matches_dijkstra() {
        let g = g();
        let yen = yen_k_shortest(&g, NodeId(0), NodeId(2), 1, |e| *g.edge(e)).unwrap();
        let dj = crate::dijkstra(&g, NodeId(0), NodeId(2), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(yen.len(), 1);
        assert!((yen[0].cost - dj.cost).abs() < 1e-12);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_with_and_without_alt() {
        let g = g();
        let csr = g.to_csr();
        let lm = Landmarks::build(&csr, 4, |e| *g.edge(e)).unwrap();
        let mut ws = YenWorkspace::new();
        let fresh = yen_k_shortest(&g, NodeId(0), NodeId(5), 4, |e| *g.edge(e)).unwrap();
        for _ in 0..3 {
            let plain =
                yen_k_shortest_csr(&csr, &mut ws, NodeId(0), NodeId(5), 4, |e| *g.edge(e), None)
                    .unwrap();
            assert_eq!(plain, fresh);
            let pruned = yen_k_shortest_csr(
                &csr,
                &mut ws,
                NodeId(0),
                NodeId(5),
                4,
                |e| *g.edge(e),
                Some(&lm),
            )
            .unwrap();
            assert_eq!(pruned, fresh);
        }
    }
}
