//! Yen's k-shortest loopless paths.
//!
//! Used for the "average delay across all physical paths" series in the
//! paper's Fig. 12, where multiple existing conduit paths join a city pair.

use crate::{dijkstra_filtered, EdgeId, GraphError, MultiGraph, NodeId, Path};

/// Returns up to `k` cheapest *loopless* paths from `source` to `target`,
/// sorted by ascending cost.
///
/// Parallel edges are handled correctly: two paths through the same node
/// sequence but different parallel conduits are distinct.
///
/// `cost` must be non-negative and finite for present edges
/// (`f64::INFINITY` masks an edge, as in [`crate::dijkstra`]).
pub fn yen_k_shortest<N, E>(
    g: &MultiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: impl Fn(EdgeId) -> f64,
) -> Result<Vec<Path>, GraphError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let no_nodes = vec![false; g.node_count()];
    let no_edges = vec![false; g.edge_count()];
    let first = match dijkstra_filtered(g, source, target, &cost, &no_nodes, &no_edges)? {
        Some(p) => p,
        None => return Ok(Vec::new()),
    };
    let mut accepted: Vec<Path> = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        // `accepted` starts non-empty and only grows; if that invariant
        // ever broke, stopping with what we have beats panicking.
        let Some(last) = accepted.last().cloned() else {
            break;
        };
        // Each node of the last accepted path except the target is a spur.
        for j in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[j];
            let root_nodes = &last.nodes[..=j];
            let root_edges = &last.edges[..j];

            let mut banned_edges = vec![false; g.edge_count()];
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > j
                    && p.nodes.len() > j
                    && p.nodes[..=j] == *root_nodes
                    && p.edges[..j] == *root_edges
                {
                    banned_edges[p.edges[j].index()] = true;
                }
            }
            // Ban the root's interior nodes so spur paths are loopless.
            let mut banned_nodes = vec![false; g.node_count()];
            for n in &root_nodes[..j] {
                banned_nodes[n.index()] = true;
            }

            let spur =
                dijkstra_filtered(g, spur_node, target, &cost, &banned_nodes, &banned_edges)?;
            if let Some(spur) = spur {
                let root_cost: f64 = root_edges.iter().map(|e| cost(*e)).sum();
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let cand = Path {
                    nodes,
                    edges,
                    cost: root_cost + spur.cost,
                };
                let dup = accepted
                    .iter()
                    .chain(candidates.iter())
                    .any(|p| p.edges == cand.edges);
                if !dup {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate into the accepted list.
        let Some((best_idx, _)) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx));
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic Yen example topology plus a parallel edge.
    ///
    /// c(0) -3- d(1) -4- f(2)
    /// c -2- e(3) -1- d ; e -2- f ; e -3- g(4) ; f -2- h(5) ; g -2- h ; d -1- g(absent)
    fn g() -> MultiGraph<&'static str, f64> {
        let mut g = MultiGraph::new();
        let c = g.add_node("c");
        let d = g.add_node("d");
        let f = g.add_node("f");
        let e = g.add_node("e");
        let gg = g.add_node("g");
        let h = g.add_node("h");
        g.add_edge(c, d, 3.0);
        g.add_edge(d, f, 4.0);
        g.add_edge(c, e, 2.0);
        g.add_edge(e, d, 1.0);
        g.add_edge(e, f, 2.0);
        g.add_edge(e, gg, 3.0);
        g.add_edge(f, h, 2.0);
        g.add_edge(gg, h, 2.0);
        g
    }

    #[test]
    fn finds_k_paths_in_ascending_cost() {
        let g = g();
        // c(0) → h(5)
        let ps = yen_k_shortest(&g, NodeId(0), NodeId(5), 4, |e| *g.edge(e)).unwrap();
        assert!(ps.len() >= 3, "found {}", ps.len());
        for w in ps.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
        // Best: c-e-f-h = 2+2+2 = 6.
        assert!((ps[0].cost - 6.0).abs() < 1e-9, "best cost {}", ps[0].cost);
        for p in &ps {
            assert!(p.is_valid_in(&g));
            assert!(p.is_simple(), "path not loopless: {:?}", p.nodes);
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(5));
        }
        // All distinct edge sequences.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].edges, ps[j].edges);
            }
        }
    }

    #[test]
    fn parallel_edges_yield_distinct_paths() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let ps = yen_k_shortest(&g, a, b, 5, |e| *g.edge(e)).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].cost, 1.0);
        assert_eq!(ps[1].cost, 2.0);
        assert_ne!(ps[0].edges, ps[1].edges);
    }

    #[test]
    fn k_zero_and_disconnected() {
        let g = g();
        assert!(yen_k_shortest(&g, NodeId(0), NodeId(5), 0, |e| *g.edge(e))
            .unwrap()
            .is_empty());
        let mut g2 = g.clone();
        let lonely = g2.add_node("x");
        assert!(yen_k_shortest(&g2, NodeId(0), lonely, 3, |e| *g2.edge(e))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn exhausts_when_fewer_than_k_paths_exist() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        let ps = yen_k_shortest(&g, a, b, 10, |e| *g.edge(e)).unwrap();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn k_one_matches_dijkstra() {
        let g = g();
        let yen = yen_k_shortest(&g, NodeId(0), NodeId(2), 1, |e| *g.edge(e)).unwrap();
        let dj = crate::dijkstra(&g, NodeId(0), NodeId(2), |e| *g.edge(e))
            .unwrap()
            .unwrap();
        assert_eq!(yen.len(), 1);
        assert!((yen[0].cost - dj.cost).abs() < 1e-12);
    }
}
