use serde::{Deserialize, Serialize};

use crate::{EdgeId, MultiGraph, NodeId};

/// A walk through a [`MultiGraph`]: `nodes.len() == edges.len() + 1`.
///
/// `cost` is the sum of the cost function used to find the path — its
/// meaning (km, hops, shared-risk units) is the caller's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges; `edges[i]` joins `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
    /// Total cost under the cost function used for the search.
    pub cost: f64,
}

impl Path {
    /// A zero-cost path consisting of a single node.
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
            cost: 0.0,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination node.
    pub fn target(&self) -> NodeId {
        self.nodes[self.nodes.len() - 1]
    }

    /// Number of edges (hops).
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Whether the node/edge structure is internally consistent with `g`.
    pub fn is_valid_in<N, E>(&self, g: &MultiGraph<N, E>) -> bool {
        if self.nodes.len() != self.edges.len() + 1 || self.nodes.is_empty() {
            return false;
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.index() >= g.edge_count() {
                return false;
            }
            let (u, v) = g.endpoints(*e);
            let (a, b) = (self.nodes[i], self.nodes[i + 1]);
            if !((u == a && v == b) || (u == b && v == a)) {
                return false;
            }
        }
        true
    }

    /// Whether the path visits no node twice (loopless).
    pub fn is_simple(&self) -> bool {
        let mut seen: Vec<NodeId> = self.nodes.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Recomputes `cost` under a different edge cost function.
    pub fn cost_under(&self, mut cost: impl FnMut(EdgeId) -> f64) -> f64 {
        self.edges.iter().map(|e| cost(*e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> (MultiGraph<(), ()>, Vec<NodeId>, Vec<EdgeId>) {
        let mut g = MultiGraph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        let es = vec![
            g.add_edge(ns[0], ns[1], ()),
            g.add_edge(ns[1], ns[2], ()),
            g.add_edge(ns[2], ns[3], ()),
        ];
        (g, ns, es)
    }

    #[test]
    fn valid_path_checks() {
        let (g, ns, es) = line();
        let p = Path {
            nodes: ns.clone(),
            edges: es.clone(),
            cost: 3.0,
        };
        assert!(p.is_valid_in(&g));
        assert!(p.is_simple());
        assert_eq!(p.hops(), 3);
        assert_eq!(p.source(), ns[0]);
        assert_eq!(p.target(), ns[3]);
    }

    #[test]
    fn detects_structural_mismatch() {
        let (g, ns, es) = line();
        // Edge 2 joins ns[2]-ns[3], not ns[0]-ns[1].
        let p = Path {
            nodes: vec![ns[0], ns[1]],
            edges: vec![es[2]],
            cost: 1.0,
        };
        assert!(!p.is_valid_in(&g));
        // Wrong arity.
        let p = Path {
            nodes: vec![ns[0], ns[1]],
            edges: vec![],
            cost: 0.0,
        };
        assert!(!p.is_valid_in(&g));
    }

    #[test]
    fn non_simple_detected() {
        let (_, ns, es) = line();
        let p = Path {
            nodes: vec![ns[0], ns[1], ns[0]],
            edges: vec![es[0], es[0]],
            cost: 2.0,
        };
        assert!(!p.is_simple());
    }

    #[test]
    fn cost_under_recomputes() {
        let (_, ns, es) = line();
        let p = Path {
            nodes: ns,
            edges: es,
            cost: 3.0,
        };
        assert_eq!(p.cost_under(|_| 2.5), 7.5);
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(7));
        assert_eq!(p.source(), p.target());
        assert_eq!(p.hops(), 0);
        assert!(p.is_simple());
    }
}
