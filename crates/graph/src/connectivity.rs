//! Connectivity, bridges, articulation points, and global min cut.
//!
//! These are the robustness primitives behind the paper's §4 framing: a
//! *bridge* conduit is one whose single cut partitions the network, and the
//! Stoer–Wagner global min cut answers "how many (weighted) fiber cuts are
//! needed to partition the US long-haul infrastructure".

use crate::{EdgeId, MultiGraph, NodeId};

/// Assigns each node a component index; returns `(component_of, count)`.
pub fn connected_components<N, E>(g: &MultiGraph<N, E>) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.node_count()];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in g.node_ids() {
        if comp[start.index()] != u32::MAX {
            continue;
        }
        comp[start.index()] = count;
        stack.push(start);
        while let Some(n) = stack.pop() {
            for (_, m) in g.neighbors(n) {
                if comp[m.index()] == u32::MAX {
                    comp[m.index()] = count;
                    stack.push(m);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Whether the graph is connected (vacuously true when empty).
pub fn is_connected<N, E>(g: &MultiGraph<N, E>) -> bool {
    g.node_count() == 0 || connected_components(g).1 == 1
}

struct DfsState {
    disc: Vec<u32>,
    low: Vec<u32>,
    timer: u32,
}

const UNVISITED: u32 = u32::MAX;

/// Runs an iterative lowlink DFS, invoking callbacks on tree retreat.
///
/// `on_retreat(parent, child, edge, low_child, disc_parent, root_children)`
fn lowlink_dfs<N, E>(
    g: &MultiGraph<N, E>,
    mut on_retreat: impl FnMut(NodeId, NodeId, EdgeId, u32, u32),
    mut on_root_done: impl FnMut(NodeId, usize),
) -> DfsState {
    let n = g.node_count();
    let mut st = DfsState {
        disc: vec![UNVISITED; n],
        low: vec![0; n],
        timer: 0,
    };
    // Frame: (node, entering edge id or MAX, parent or MAX, next adj index)
    let mut stack: Vec<(NodeId, u32, u32, usize)> = Vec::new();
    let adj: Vec<Vec<(EdgeId, NodeId)>> = g.node_ids().map(|v| g.neighbors(v).collect()).collect();

    for root in g.node_ids() {
        if st.disc[root.index()] != UNVISITED {
            continue;
        }
        let mut root_children = 0usize;
        st.disc[root.index()] = st.timer;
        st.low[root.index()] = st.timer;
        st.timer += 1;
        stack.push((root, u32::MAX, u32::MAX, 0));
        while let Some(frame) = stack.last_mut() {
            let (node, in_edge, parent, idx) = *frame;
            if idx < adj[node.index()].len() {
                frame.3 += 1;
                let (e, m) = adj[node.index()][idx];
                if e.0 == in_edge || m == node {
                    continue; // the tree edge we entered on, or a self-loop
                }
                if st.disc[m.index()] == UNVISITED {
                    st.disc[m.index()] = st.timer;
                    st.low[m.index()] = st.timer;
                    st.timer += 1;
                    if node == root {
                        root_children += 1;
                    }
                    stack.push((m, e.0, node.0, 0));
                } else {
                    // Back edge (or parallel edge to parent — also a back edge).
                    st.low[node.index()] = st.low[node.index()].min(st.disc[m.index()]);
                }
            } else {
                stack.pop();
                if parent != u32::MAX {
                    let p = NodeId(parent);
                    let low_child = st.low[node.index()];
                    st.low[p.index()] = st.low[p.index()].min(low_child);
                    on_retreat(p, node, EdgeId(in_edge), low_child, st.disc[p.index()]);
                }
            }
        }
        on_root_done(root, root_children);
    }
    st
}

/// All bridge edges: edges whose removal disconnects their component.
///
/// With parallel edges, a conduit duplicated by a second conduit between the
/// same cities is (correctly) not a bridge.
pub fn bridges<N, E>(g: &MultiGraph<N, E>) -> Vec<EdgeId> {
    let mut out = Vec::new();
    lowlink_dfs(
        g,
        |p, _child, e, low_child, disc_p| {
            if low_child > disc_p {
                out.push(e);
            }
            let _ = p;
        },
        |_, _| {},
    );
    out.sort_unstable();
    out
}

/// All articulation points: nodes whose removal disconnects their component.
pub fn articulation_points<N, E>(g: &MultiGraph<N, E>) -> Vec<NodeId> {
    let mut is_art = vec![false; g.node_count()];
    let mut roots: Vec<(NodeId, usize)> = Vec::new();
    lowlink_dfs(
        g,
        |p, _child, _e, low_child, disc_p| {
            if low_child >= disc_p {
                is_art[p.index()] = true;
            }
        },
        |root, children| roots.push((root, children)),
    );
    for (root, children) in roots {
        is_art[root.index()] = children >= 2;
    }
    is_art
        .iter()
        .enumerate()
        .filter(|(_, a)| **a)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Global minimum cut (Stoer–Wagner) of an undirected weighted graph.
///
/// `weight` gives each edge's capacity (must be ≥ 0; parallel edges sum).
/// Returns `(cut_weight, one_side)` where `one_side` is the set of nodes on
/// one shore of the cut. Returns weight `0.0` with a trivial side if the
/// graph is disconnected or has fewer than two nodes.
pub fn stoer_wagner_min_cut<N, E>(
    g: &MultiGraph<N, E>,
    mut weight: impl FnMut(EdgeId) -> f64,
) -> (f64, Vec<NodeId>) {
    let n = g.node_count();
    if n < 2 {
        return (0.0, Vec::new());
    }
    // Dense weight matrix with parallel edges merged; self-loops ignored.
    let mut w = vec![vec![0.0f64; n]; n];
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if u == v {
            continue;
        }
        let c = weight(e).max(0.0);
        w[u.index()][v.index()] += c;
        w[v.index()][u.index()] += c;
    }
    // merged[i] = original nodes currently contracted into vertex i.
    let mut merged: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = (f64::INFINITY, Vec::new());

    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase).
        let mut in_a = vec![false; n];
        let mut conn = vec![0.0f64; n];
        let mut prev = usize::MAX;
        let mut last = usize::MAX;
        for _ in 0..active.len() {
            // Select the most tightly connected vertex not yet in A.
            let (&sel, _) = active
                .iter()
                .filter(|&&v| !in_a[v])
                .map(|v| (v, conn[*v]))
                .fold((&usize::MAX, f64::NEG_INFINITY), |acc, (v, c)| {
                    if c > acc.1 {
                        (v, c)
                    } else {
                        acc
                    }
                });
            in_a[sel] = true;
            prev = last;
            last = sel;
            for &v in &active {
                if !in_a[v] {
                    conn[v] += w[sel][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone vs the rest.
        let cut = {
            let mut s = 0.0;
            for &v in &active {
                if v != last {
                    s += w[last][v];
                }
            }
            s
        };
        if cut < best.0 {
            best = (cut, merged[last].iter().map(|&i| NodeId(i)).collect());
        }
        // Contract `last` into `prev`.
        let taken = std::mem::take(&mut merged[last]);
        merged[prev].extend(taken);
        for &v in &active {
            if v != prev && v != last {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        active.retain(|&v| v != last);
    }
    if best.0.is_infinite() {
        (0.0, Vec::new())
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barbell() -> MultiGraph<(), f64> {
        // Triangle a-b-c, triangle d-e-f, bridge c-d.
        let mut g = MultiGraph::new();
        let ns: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(ns[u], ns[v], 1.0);
        }
        g.add_edge(ns[2], ns[3], 1.0); // the bridge, edge id 6
        g
    }

    #[test]
    fn components_counts() {
        let mut g = barbell();
        assert!(is_connected(&g));
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 1);
        assert!(comp.iter().all(|&c| c == 0));
        g.add_node(()); // isolated node
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[6], 1);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g: MultiGraph<(), ()> = MultiGraph::new();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).1, 0);
    }

    #[test]
    fn finds_the_bridge() {
        let g = barbell();
        assert_eq!(bridges(&g), vec![EdgeId(6)]);
    }

    #[test]
    fn parallel_edge_kills_bridge() {
        let mut g = barbell();
        g.add_edge(NodeId(2), NodeId(3), 1.0); // duplicate the bridge
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn chain_is_all_bridges() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        let e0 = g.add_edge(ns[0], ns[1], ());
        let e1 = g.add_edge(ns[1], ns[2], ());
        let e2 = g.add_edge(ns[2], ns[3], ());
        assert_eq!(bridges(&g), vec![e0, e1, e2]);
        assert_eq!(articulation_points(&g), vec![ns[1], ns[2]]);
    }

    #[test]
    fn articulation_points_of_barbell() {
        let g = barbell();
        assert_eq!(articulation_points(&g), vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn cycle_has_no_bridges_or_cut_vertices() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let ns: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(ns[i], ns[(i + 1) % 5], ());
        }
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn self_loop_is_never_a_bridge() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a, ());
        let e = g.add_edge(a, b, ());
        assert_eq!(bridges(&g), vec![e]);
    }

    #[test]
    fn min_cut_of_barbell_is_the_bridge() {
        let g = barbell();
        let (w, side) = stoer_wagner_min_cut(&g, |e| *g.edge(e));
        assert_eq!(w, 1.0);
        assert!(
            side.len() == 3,
            "one shore should be a triangle, got {side:?}"
        );
    }

    #[test]
    fn min_cut_respects_weights() {
        // Square with one heavy diagonal: cut isolates the lightest corner.
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let ns: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ns[0], ns[1], 10.0);
        g.add_edge(ns[1], ns[2], 10.0);
        g.add_edge(ns[2], ns[3], 1.0);
        g.add_edge(ns[3], ns[0], 1.0);
        let (w, side) = stoer_wagner_min_cut(&g, |e| *g.edge(e));
        assert_eq!(w, 2.0);
        assert!(side == vec![ns[3]] || side.len() == 3);
    }

    #[test]
    fn min_cut_sums_parallel_edges() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.5);
        let (w, _) = stoer_wagner_min_cut(&g, |e| *g.edge(e));
        assert!((w - 3.5).abs() < 1e-12);
    }

    #[test]
    fn min_cut_disconnected_is_zero() {
        let mut g: MultiGraph<(), f64> = MultiGraph::new();
        let a = g.add_node(());
        let _b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, 5.0);
        let (w, _) = stoer_wagner_min_cut(&g, |e| *g.edge(e));
        assert_eq!(w, 0.0);
    }

    #[test]
    fn min_cut_tiny_graphs() {
        let g: MultiGraph<(), f64> = MultiGraph::new();
        assert_eq!(stoer_wagner_min_cut(&g, |_| 1.0).0, 0.0);
        let mut g1: MultiGraph<(), f64> = MultiGraph::new();
        g1.add_node(());
        assert_eq!(stoer_wagner_min_cut(&g1, |_| 1.0).0, 0.0);
    }
}
