//! Corpus sanitization: the graceful-degradation front door of the
//! records layer.
//!
//! Real public-records corpora are dirty — OCR garbage, misfiled
//! amendments contradicting earlier filings. The paper's methodology
//! quietly absorbs this by majority-voting evidence; this module makes the
//! absorption explicit and *counted*: [`sanitize_corpus`] drops documents
//! whose city labels cannot resolve, flags contradictory right-of-way
//! claims, and reports exactly what it did.

use intertubes_degrade::{DegradationAction, DegradationPolicy, DegradationReport};

use crate::corpus::Corpus;
use crate::document::Document;
use crate::RecordsError;

/// Whether a city label is structurally resolvable: generated labels are
/// always `"City, ST"`, so a missing separator or a replacement character
/// marks OCR-grade corruption.
fn label_is_corrupt(label: &str) -> bool {
    label.contains('\u{FFFD}') || !label.contains(", ") || label.trim().is_empty()
}

/// Whether `doc` carries at least one corrupt city label.
pub fn document_is_corrupt(doc: &Document) -> bool {
    doc.cities.iter().any(|c| label_is_corrupt(c))
}

fn pair_of(doc: &Document) -> Option<(String, String)> {
    let a = doc.cities.first()?;
    let b = doc.cities.get(1)?;
    Some(if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    })
}

/// Counts "amendment conflicts": a later document naming the same city
/// pair with the same provider list but a *different* right-of-way claim
/// than an earlier one. Each conflicting later document counts once.
///
/// These documents are kept — evidence accumulation already resolves
/// contradictions by majority vote — but they are surfaced as
/// `Unvalidated` so the report quantifies how much of the row evidence is
/// disputed.
pub fn count_row_conflicts(docs: &[Document]) -> usize {
    let mut conflicts = 0usize;
    for (j, later) in docs.iter().enumerate() {
        let Some(row_j) = later.row else { continue };
        let Some(pair_j) = pair_of(later) else { continue };
        let disputed = docs[..j].iter().any(|earlier| {
            earlier.row.is_some_and(|r| r != row_j)
                && earlier.isps == later.isps
                && pair_of(earlier).as_ref() == Some(&pair_j)
        });
        conflicts += disputed as usize;
    }
    conflicts
}

/// Sanitizes a corpus under the given policy.
///
/// * Corrupt documents (unresolvable city labels): `Strict` fails with
///   [`RecordsError::CorruptDocument`]; `Lenient` drops them (action
///   `Dropped`, reason `"corrupt-city-label"`).
/// * Contradictory right-of-way claims: counted and reported (action
///   `Unvalidated`, reason `"contradictory-row-claim"`) under both
///   policies; the documents are kept because majority voting downstream
///   already resolves them.
///
/// On a clean corpus the returned corpus is the input, bit for bit, and
/// the report is empty.
pub fn sanitize_corpus(
    corpus: &Corpus,
    policy: DegradationPolicy,
) -> Result<(Corpus, DegradationReport), RecordsError> {
    let mut span = intertubes_obs::stage("records.sanitize");
    span.items("documents_in", corpus.len());
    let mut report = DegradationReport::new();
    let corrupt = corpus.docs().iter().filter(|d| document_is_corrupt(d)).count();
    if corrupt > 0 && policy.is_strict() {
        span.failed();
        // Surface the first offender for the error message.
        let doc = corpus
            .docs()
            .iter()
            .find(|d| document_is_corrupt(d))
            .map(|d| d.id.0)
            .unwrap_or(0);
        return Err(RecordsError::CorruptDocument { id: doc });
    }

    let clean: Corpus = if corrupt > 0 {
        report.note(
            "records.sanitize",
            DegradationAction::Dropped,
            "corrupt-city-label",
            corrupt,
        );
        // Renumber after filtering: `Corpus::doc` resolves ids positionally,
        // so surviving documents must stay contiguous from zero.
        let mut survivors: Vec<Document> = corpus
            .docs()
            .iter()
            .filter(|d| !document_is_corrupt(d))
            .cloned()
            .collect();
        for (i, d) in survivors.iter_mut().enumerate() {
            d.id = crate::document::DocId(i as u32);
        }
        Corpus::from_documents(survivors)
    } else {
        corpus.clone()
    };

    let conflicts = count_row_conflicts(clean.docs());
    report.note(
        "records.sanitize",
        DegradationAction::Unvalidated,
        "contradictory-row-claim",
        conflicts,
    );
    span.items("documents_out", clean.len());
    if !report.is_clean() {
        span.degraded();
    }
    Ok((clean, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocId, DocKind, RowHint};

    fn doc(id: u32, cities: [&str; 2], isps: &[&str], row: Option<RowHint>) -> Document {
        Document {
            id: DocId(id),
            kind: DocKind::IruAgreement,
            title: format!("doc {id}"),
            body: "conduit".to_string(),
            cities: cities.iter().map(|s| s.to_string()).collect(),
            isps: isps.iter().map(|s| s.to_string()).collect(),
            row,
        }
    }

    #[test]
    fn clean_corpus_passes_untouched() {
        let c = Corpus::from_documents(vec![
            doc(0, ["Dallas, TX", "Houston, TX"], &["AT&T"], Some(RowHint::Rail)),
            doc(1, ["Dallas, TX", "Houston, TX"], &["AT&T"], Some(RowHint::Rail)),
        ]);
        let (out, report) = sanitize_corpus(&c, DegradationPolicy::Lenient).unwrap();
        assert!(report.is_clean());
        assert_eq!(out.len(), c.len());
        sanitize_corpus(&c, DegradationPolicy::Strict).unwrap();
    }

    #[test]
    fn corrupt_documents_drop_in_lenient_fail_in_strict() {
        let c = Corpus::from_documents(vec![
            doc(0, ["Dallas, TX", "Houston, TX"], &["AT&T"], None),
            doc(1, ["\u{FFFD}XTsallaD", "Houston, TX"], &["AT&T"], None),
            doc(2, ["no-separator", "Houston, TX"], &[], None),
        ]);
        let (out, report) = sanitize_corpus(&c, DegradationPolicy::Lenient).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(report.total(DegradationAction::Dropped), 2);
        assert_eq!(report.total_for_reason("corrupt-city-label"), 2);
        let err = sanitize_corpus(&c, DegradationPolicy::Strict).unwrap_err();
        assert!(matches!(err, RecordsError::CorruptDocument { .. }));
    }

    #[test]
    fn row_conflicts_are_counted_not_dropped() {
        let c = Corpus::from_documents(vec![
            doc(0, ["Dallas, TX", "Houston, TX"], &["AT&T"], Some(RowHint::Rail)),
            doc(1, ["Houston, TX", "Dallas, TX"], &["AT&T"], Some(RowHint::Road)),
            // Different provider list: not an amendment conflict.
            doc(2, ["Dallas, TX", "Houston, TX"], &["Sprint"], Some(RowHint::Road)),
        ]);
        let (out, report) = sanitize_corpus(&c, DegradationPolicy::Lenient).unwrap();
        assert_eq!(out.len(), 3, "conflicting docs must be kept");
        assert_eq!(report.total_for_reason("contradictory-row-claim"), 1);
        // Strict mode also tolerates conflicts (voting resolves them).
        sanitize_corpus(&c, DegradationPolicy::Strict).unwrap();
    }
}
