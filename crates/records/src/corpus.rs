//! Corpus generation and keyword search.
//!
//! The generator plays the role of the world's paper trail: for each
//! ground-truth conduit it emits, with configurable probability, one or more
//! public records naming the endpoints, a subset of the tenants, and
//! (sometimes) the right-of-way. It also emits *noise*: records about
//! unrelated city pairs or mis-attributed providers, so the inference stage
//! has to do real work. Coverage < 1 models the paper's admission that "the
//! constructed map is not complete".

use std::collections::HashMap;

use intertubes_atlas::{RowType, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::document::{DocId, DocKind, Document, RowHint};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Probability that a conduit has at least one record about it.
    pub conduit_coverage: f64,
    /// Probability that a given tenant is named in a record about its
    /// conduit (per record).
    pub tenant_mention_rate: f64,
    /// Probability a record carries a right-of-way hint.
    pub row_hint_rate: f64,
    /// Number of pure-noise records per 100 genuine ones.
    pub noise_per_100: usize,
    /// Probability that a genuine record names one *extra* provider that is
    /// not actually in the conduit (mis-attribution noise).
    pub misattribution_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            conduit_coverage: 0.92,
            tenant_mention_rate: 0.55,
            row_hint_rate: 0.6,
            noise_per_100: 6,
            misattribution_rate: 0.03,
        }
    }
}

/// A searchable collection of public records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    docs: Vec<Document>,
    /// Inverted index: lowercase token → doc ids (sorted).
    index: HashMap<String, Vec<DocId>>,
}

impl Corpus {
    /// Builds a corpus (and its index) from finished documents.
    pub fn from_documents(docs: Vec<Document>) -> Corpus {
        let mut index: HashMap<String, Vec<DocId>> = HashMap::new();
        for d in &docs {
            let mut text = String::new();
            text.push_str(&d.title);
            text.push(' ');
            text.push_str(&d.body);
            for c in &d.cities {
                text.push(' ');
                text.push_str(c);
            }
            for i in &d.isps {
                text.push(' ');
                text.push_str(i);
            }
            let mut tokens: Vec<String> = tokenize(&text);
            tokens.sort_unstable();
            tokens.dedup();
            for t in tokens {
                index.entry(t).or_default().push(d.id);
            }
        }
        Corpus { docs, index }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Looks up a record.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// All records.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Keyword search in the spirit of the paper's
    /// `"los angeles to san francisco fiber iru at&t sprint"` queries:
    /// records matching the most query tokens first; records matching fewer
    /// than `min_hits` tokens are dropped.
    pub fn search(&self, query: &str, min_hits: usize) -> Vec<DocId> {
        let mut scores: HashMap<DocId, usize> = HashMap::new();
        for token in tokenize(query) {
            if let Some(ids) = self.index.get(&token) {
                for id in ids {
                    *scores.entry(*id).or_insert(0) += 1;
                }
            }
        }
        let mut hits: Vec<(DocId, usize)> =
            scores.into_iter().filter(|(_, s)| *s >= min_hits).collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.into_iter().map(|(id, _)| id).collect()
    }

    /// All records naming both cities (the work-horse lookup of steps 2/4).
    pub fn records_for_pair(&self, a: &str, b: &str) -> Vec<DocId> {
        // Use the index on the rarer city token to narrow, then filter.
        let ta = tokenize(a);
        let candidates: Vec<DocId> = ta
            .first()
            .and_then(|t| self.index.get(t))
            .cloned()
            .unwrap_or_default();
        candidates
            .into_iter()
            .filter(|id| self.doc(*id).mentions_pair(a, b))
            .collect()
    }
}

/// Lowercase alphanumeric tokens of length ≥ 2, plus provider-style tokens
/// with `&` (so "AT&T" survives tokenization).
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !(c.is_alphanumeric() || c == '&'))
        .filter(|t| t.len() >= 2)
        .map(|t| t.to_string())
        .collect()
}

fn title_for(kind: DocKind, a: &str, b: &str) -> String {
    match kind {
        DocKind::AgencyFiling => format!("Public utilities filing: {a} to {b} fiber route"),
        DocKind::EnvironmentalImpact => {
            format!("Final environmental impact statement, {a} – {b} corridor")
        }
        DocKind::FranchiseAgreement => format!("Franchise agreement, {a} metropolitan area"),
        DocKind::IruAgreement => format!("Indefeasible right of use: {a} / {b} segment"),
        DocKind::PressRelease => format!("Carrier extends national footprint between {a} and {b}"),
        DocKind::SettlementNotice => {
            format!("Railroad right-of-way settlement notice: {a} to {b}")
        }
        DocKind::RowFiling => format!("DOT right-of-way permit: {a} – {b}"),
        DocKind::ProjectPlan => format!("Design services project plan, {a} to {b} parkway"),
    }
}

fn body_for(kind: DocKind, isps: &[String], row: Option<RowHint>) -> String {
    let who = isps.join(", ");
    let row_txt = match row {
        Some(RowHint::Road) => " The conduit is buried in the highway right of way.",
        Some(RowHint::Rail) => " The facilities occupy the railroad right of way.",
        Some(RowHint::Pipeline) => " The route parallels an existing products pipeline.",
        None => "",
    };
    format!(
        "This {} documents telecommunications facilities including fiber optic \
         cables installed by {who}.{row_txt}",
        kind.label()
    )
}

/// Generates the public-record corpus for a world.
///
/// Deterministic given the world seed and config. The corpus references only
/// city labels and provider names — never ground-truth identifiers — so the
/// map-construction pipeline cannot cheat.
pub fn generate_corpus(world: &World, cfg: &CorpusConfig) -> Corpus {
    let mut span = intertubes_obs::stage("corpus.generate");
    let mut rng = StdRng::seed_from_u64(world.config.seed ^ 0x5eed_0c0de);
    let mut docs: Vec<Document> = Vec::new();
    let push = |docs: &mut Vec<Document>, kind, a: String, b: String, isps: Vec<String>, row| {
        let id = DocId(docs.len() as u32);
        docs.push(Document {
            id,
            kind,
            title: title_for(kind, &a, &b),
            body: body_for(kind, &isps, row),
            cities: vec![a, b],
            isps,
            row,
        });
    };

    // Tenants per conduit (all providers, including unpublished ones — a
    // settlement notice does not care whether the carrier publishes a map).
    let n_conduits = world.system.conduits.len();
    let mut tenants: Vec<Vec<usize>> = vec![Vec::new(); n_conduits];
    for (i, fp) in world.footprints.iter().enumerate() {
        for c in &fp.conduits {
            tenants[c.index()].push(i);
        }
    }

    for (ci, conduit) in world.system.conduits.iter().enumerate() {
        if !rng.gen_bool(cfg.conduit_coverage) {
            continue;
        }
        let a = world.city_label(conduit.a);
        let b = world.city_label(conduit.b);
        let n_docs = 1 + rng.gen_range(0..3);
        for _ in 0..n_docs {
            let kind = DocKind::ALL[rng.gen_range(0..DocKind::ALL.len())];
            let mut named: Vec<String> = tenants[ci]
                .iter()
                .filter(|_| rng.gen_bool(cfg.tenant_mention_rate))
                .map(|&i| world.roster[i].name.clone())
                .collect();
            if named.is_empty() {
                // A record always names at least one carrier.
                if let Some(&i) = tenants[ci].first() {
                    named.push(world.roster[i].name.clone());
                }
            }
            if rng.gen_bool(cfg.misattribution_rate) {
                let wrong = rng.gen_range(0..world.roster.len());
                let name = world.roster[wrong].name.clone();
                if !named.contains(&name) {
                    named.push(name);
                }
            }
            let row = if rng.gen_bool(cfg.row_hint_rate) {
                match conduit.row {
                    RowType::Road => Some(RowHint::Road),
                    RowType::Rail => Some(RowHint::Rail),
                    RowType::Pipeline => Some(RowHint::Pipeline),
                    RowType::Unknown => None,
                }
            } else {
                None
            };
            push(&mut docs, kind, a.clone(), b.clone(), named, row);
        }
    }

    // Noise: records about city pairs with no conduit at all.
    let n_noise = docs.len() * cfg.noise_per_100 / 100;
    for _ in 0..n_noise {
        let a = rng.gen_range(0..world.cities.len());
        let b = rng.gen_range(0..world.cities.len());
        if a == b {
            continue;
        }
        let kind = DocKind::ALL[rng.gen_range(0..DocKind::ALL.len())];
        let isp = world.roster[rng.gen_range(0..world.roster.len())]
            .name
            .clone();
        push(
            &mut docs,
            kind,
            world.cities[a].label(),
            world.cities[b].label(),
            vec![isp],
            None,
        );
    }

    span.items("documents", docs.len());
    Corpus::from_documents(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (World, Corpus) {
        let w = World::reference();
        let c = generate_corpus(&w, &CorpusConfig::default());
        (w, c)
    }

    #[test]
    fn corpus_has_hundreds_of_records() {
        let (_, c) = corpus();
        // The paper mined "hundreds of relevant documents".
        assert!(c.len() > 500, "only {} records", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn search_finds_pair_and_isp() {
        let (w, c) = corpus();
        // Find a genuine conduit + a tenant to search for.
        let fp = &w.footprints[0]; // AT&T
        let cid = fp.conduits[fp.conduits.len() / 2];
        let conduit = w.system.conduit(cid);
        let (a, b) = (w.city_label(conduit.a), w.city_label(conduit.b));
        let hits = c.search(&format!("{a} {b} fiber iru AT&T"), 3);
        // Coverage is 92 %, so most conduits have records; this one may
        // genuinely be missing, but search must at least not error and must
        // rank pair-matching docs first when present.
        if let Some(first) = hits.first() {
            let d = c.doc(*first);
            let names_city = d.cities.iter().any(|x| *x == a) || d.cities.iter().any(|x| *x == b);
            assert!(names_city, "top hit unrelated to query: {:?}", d.title);
        }
    }

    #[test]
    fn records_for_pair_is_symmetric() {
        let (w, c) = corpus();
        let conduit = &w.system.conduits[0];
        let (a, b) = (w.city_label(conduit.a), w.city_label(conduit.b));
        let ab = c.records_for_pair(&a, &b);
        let ba = c.records_for_pair(&b, &a);
        assert_eq!(ab.len(), ba.len());
    }

    #[test]
    fn most_conduits_have_records() {
        let (w, c) = corpus();
        let covered = w
            .system
            .conduits
            .iter()
            .filter(|cd| {
                !c.records_for_pair(&w.city_label(cd.a), &w.city_label(cd.b))
                    .is_empty()
            })
            .count();
        let frac = covered as f64 / w.system.conduits.len() as f64;
        assert!(frac > 0.85, "coverage {frac}");
        assert!(frac < 1.0, "perfect coverage is unrealistic");
    }

    #[test]
    fn tokenizer_keeps_ampersand_names() {
        let toks = tokenize("AT&T and Sprint share the Dallas, TX conduit");
        assert!(toks.contains(&"at&t".to_string()));
        assert!(toks.contains(&"dallas".to_string()));
        assert!(toks.contains(&"tx".to_string()));
        assert!(!toks.contains(&"a".to_string()), "1-char tokens dropped");
    }

    #[test]
    fn deterministic() {
        let w = World::reference();
        let a = generate_corpus(&w, &CorpusConfig::default());
        let b = generate_corpus(&w, &CorpusConfig::default());
        assert_eq!(a.docs(), b.docs());
    }

    #[test]
    fn row_hints_mostly_match_ground_truth() {
        let (w, c) = corpus();
        let mut agree = 0usize;
        let mut with_hint = 0usize;
        for d in c.docs() {
            let Some(hint) = d.row else { continue };
            // Find the ground-truth conduit for this pair, if any.
            let truth = w
                .system
                .conduits
                .iter()
                .find(|cd| d.mentions_pair(&w.city_label(cd.a), &w.city_label(cd.b)));
            if let Some(t) = truth {
                with_hint += 1;
                let matches = matches!(
                    (hint, t.row),
                    (RowHint::Road, RowType::Road)
                        | (RowHint::Rail, RowType::Rail)
                        | (RowHint::Pipeline, RowType::Pipeline)
                );
                agree += matches as usize;
            }
        }
        assert!(with_hint > 100);
        // Parallel conduits between the same pair can make hints ambiguous,
        // so agreement is high but not perfect.
        assert!(agree as f64 / with_hint as f64 > 0.8);
    }
}
