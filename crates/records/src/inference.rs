//! Evidence accumulation: from records to validated links and inferred
//! conduit sharing (the paper's steps 2 and 4).
//!
//! Given a candidate link (a city pair, possibly with a claimed provider),
//! the engine collects every record naming both endpoints and accumulates,
//! per provider, the number of independent records placing that provider in
//! the conduit. Single mentions are treated as weak evidence (the paper
//! requires "sufficient evidence", often ruling out alternatives); the
//! confidence model makes that explicit.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::document::{DocId, RowHint};

/// Evidence gathered for one provider on one city pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderEvidence {
    /// Provider name.
    pub isp: String,
    /// Records naming the provider on this pair.
    pub docs: Vec<DocId>,
    /// Confidence in `[0, 1)`: `1 - exp(-docs/2)` — one record ≈ 0.39, two
    /// ≈ 0.63, four ≈ 0.86.
    pub confidence: f64,
}

/// The outcome of evidence gathering for one city pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairEvidence {
    /// Endpoint label.
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// All records naming the pair.
    pub docs: Vec<DocId>,
    /// Per-provider evidence, sorted by descending confidence.
    pub providers: Vec<ProviderEvidence>,
    /// Right-of-way votes across the records. A `BTreeMap` keyed by the
    /// `Ord` on [`RowHintKey`], so iteration — and therefore the
    /// [`PairEvidence::dominant_row`] tie-break — is deterministic (a
    /// `HashMap` here made Rail/Road ties flip between runs, which the
    /// determinism battery flags).
    pub row_votes: BTreeMap<RowHintKey, usize>,
}

/// Orderable right-of-way key for vote counting. The variant order is the
/// canonical tie-break order for [`PairEvidence::dominant_row`]: on equal
/// votes the *last* maximal key wins, i.e. Pipeline over Rail over Road.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RowHintKey {
    /// Highway right-of-way.
    Road,
    /// Railroad right-of-way.
    Rail,
    /// Pipeline right-of-way.
    Pipeline,
}

impl From<RowHint> for RowHintKey {
    fn from(h: RowHint) -> Self {
        match h {
            RowHint::Road => RowHintKey::Road,
            RowHint::Rail => RowHintKey::Rail,
            RowHint::Pipeline => RowHintKey::Pipeline,
        }
    }
}

impl PairEvidence {
    /// Providers meeting a confidence threshold.
    pub fn confident_providers(&self, min_confidence: f64) -> Vec<&str> {
        self.providers
            .iter()
            .filter(|p| p.confidence >= min_confidence)
            .map(|p| p.isp.as_str())
            .collect()
    }

    /// The majority right-of-way vote, if any record carried a hint.
    pub fn dominant_row(&self) -> Option<RowHintKey> {
        self.row_votes
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(k, _)| *k)
    }

    /// Whether the pair has any documentary support at all.
    pub fn is_validated(&self) -> bool {
        !self.docs.is_empty()
    }

    /// Whether a specific provider is supported on this pair.
    pub fn validates_isp(&self, isp: &str, min_confidence: f64) -> bool {
        self.providers
            .iter()
            .any(|p| p.isp == isp && p.confidence >= min_confidence)
    }
}

/// Confidence from an evidence count: `1 - exp(-n/2)`.
pub fn confidence_from_docs(n: usize) -> f64 {
    1.0 - (-(n as f64) / 2.0).exp()
}

/// Gathers all evidence about a city pair from the corpus.
pub fn gather_pair_evidence(corpus: &Corpus, a: &str, b: &str) -> PairEvidence {
    let docs = corpus.records_for_pair(a, b);
    let mut per_isp: HashMap<String, Vec<DocId>> = HashMap::new();
    let mut row_votes: BTreeMap<RowHintKey, usize> = BTreeMap::new();
    for id in &docs {
        let d = corpus.doc(*id);
        for isp in &d.isps {
            per_isp.entry(isp.clone()).or_default().push(*id);
        }
        if let Some(h) = d.row {
            *row_votes.entry(h.into()).or_insert(0) += 1;
        }
    }
    let mut providers: Vec<ProviderEvidence> = per_isp
        .into_iter()
        .map(|(isp, docs)| {
            let confidence = confidence_from_docs(docs.len());
            ProviderEvidence {
                isp,
                docs,
                confidence,
            }
        })
        .collect();
    providers.sort_by(|x, y| {
        y.confidence
            .total_cmp(&x.confidence)
            .then(x.isp.cmp(&y.isp))
    });
    PairEvidence {
        a: a.to_string(),
        b: b.to_string(),
        docs,
        providers,
        row_votes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::document::{DocKind, Document};

    fn mk(id: u32, cities: [&str; 2], isps: &[&str], row: Option<RowHint>) -> Document {
        Document {
            id: DocId(id),
            kind: DocKind::IruAgreement,
            title: format!("doc {id}: {} to {}", cities[0], cities[1]),
            body: String::new(),
            cities: cities.iter().map(|s| s.to_string()).collect(),
            isps: isps.iter().map(|s| s.to_string()).collect(),
            row,
        }
    }

    fn corpus() -> Corpus {
        Corpus::from_documents(vec![
            mk(
                0,
                ["Dallas, TX", "Houston, TX"],
                &["AT&T", "Sprint"],
                Some(RowHint::Rail),
            ),
            mk(
                1,
                ["Dallas, TX", "Houston, TX"],
                &["AT&T"],
                Some(RowHint::Rail),
            ),
            mk(
                2,
                ["Dallas, TX", "Houston, TX"],
                &["Verizon"],
                Some(RowHint::Road),
            ),
            mk(3, ["Dallas, TX", "Austin, TX"], &["AT&T"], None),
        ])
    }

    #[test]
    fn evidence_counts_per_provider() {
        let c = corpus();
        let ev = gather_pair_evidence(&c, "Dallas, TX", "Houston, TX");
        assert_eq!(ev.docs.len(), 3);
        assert!(ev.is_validated());
        let att = ev.providers.iter().find(|p| p.isp == "AT&T").unwrap();
        assert_eq!(att.docs.len(), 2);
        let sprint = ev.providers.iter().find(|p| p.isp == "Sprint").unwrap();
        assert_eq!(sprint.docs.len(), 1);
        assert!(att.confidence > sprint.confidence);
    }

    #[test]
    fn confidence_is_monotone_and_bounded() {
        assert_eq!(confidence_from_docs(0), 0.0);
        let mut last = 0.0;
        for n in 1..10 {
            let c = confidence_from_docs(n);
            assert!(c > last && c < 1.0);
            last = c;
        }
    }

    #[test]
    fn thresholds_filter_weak_evidence() {
        let c = corpus();
        let ev = gather_pair_evidence(&c, "Dallas, TX", "Houston, TX");
        // One-record providers (~0.39) fall below 0.5; two-record AT&T (~0.63) passes.
        let strong = ev.confident_providers(0.5);
        assert_eq!(strong, vec!["AT&T"]);
        assert!(ev.validates_isp("AT&T", 0.5));
        assert!(!ev.validates_isp("Verizon", 0.5));
        assert!(ev.validates_isp("Verizon", 0.3));
    }

    #[test]
    fn row_votes_take_majority() {
        let c = corpus();
        let ev = gather_pair_evidence(&c, "Dallas, TX", "Houston, TX");
        assert_eq!(ev.dominant_row(), Some(RowHintKey::Rail));
    }

    #[test]
    fn unknown_pair_has_no_evidence() {
        let c = corpus();
        let ev = gather_pair_evidence(&c, "Miami, FL", "Seattle, WA");
        assert!(!ev.is_validated());
        assert!(ev.providers.is_empty());
        assert_eq!(ev.dominant_row(), None);
    }
}
