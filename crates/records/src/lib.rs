//! Synthetic public-records corpus and evidence inference.
//!
//! Steps 2 and 4 of the paper's mapping process validate link locations and
//! infer conduit sharing from public documents — agency filings, IRU
//! agreements, right-of-way permits, settlements, press releases. The real
//! corpus was assembled by hand from hundreds of scattered sources; this
//! crate generates a synthetic corpus from the ground-truth world (with
//! configurable coverage and noise) and provides the search and
//! evidence-accumulation machinery the pipeline uses to mine it.
//!
//! The corpus speaks only in city labels and provider names — it never
//! leaks ground-truth identifiers — so the map-construction pipeline has to
//! do the same inference work the paper's authors did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod document;
mod inference;
mod sanitize;

pub use corpus::{generate_corpus, tokenize, Corpus, CorpusConfig};
pub use document::{DocId, DocKind, Document, RowHint};
pub use inference::{
    confidence_from_docs, gather_pair_evidence, PairEvidence, ProviderEvidence, RowHintKey,
};
pub use sanitize::{count_row_conflicts, document_is_corrupt, sanitize_corpus};

/// Errors of the records layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordsError {
    /// A document's city labels cannot resolve (strict sanitization).
    CorruptDocument {
        /// Offending document id.
        id: u32,
    },
    /// A document id does not exist in the corpus.
    UnknownDocument {
        /// The id that failed to resolve.
        id: u32,
        /// Corpus size at lookup time.
        corpus_len: usize,
    },
}

impl std::fmt::Display for RecordsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordsError::CorruptDocument { id } => {
                write!(f, "document {id} has unresolvable city labels")
            }
            RecordsError::UnknownDocument { id, corpus_len } => {
                write!(f, "document id {id} out of range (corpus has {corpus_len})")
            }
        }
    }
}

impl std::error::Error for RecordsError {}
