//! Synthetic public-records corpus and evidence inference.
//!
//! Steps 2 and 4 of the paper's mapping process validate link locations and
//! infer conduit sharing from public documents — agency filings, IRU
//! agreements, right-of-way permits, settlements, press releases. The real
//! corpus was assembled by hand from hundreds of scattered sources; this
//! crate generates a synthetic corpus from the ground-truth world (with
//! configurable coverage and noise) and provides the search and
//! evidence-accumulation machinery the pipeline uses to mine it.
//!
//! The corpus speaks only in city labels and provider names — it never
//! leaks ground-truth identifiers — so the map-construction pipeline has to
//! do the same inference work the paper's authors did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod document;
mod inference;

pub use corpus::{generate_corpus, tokenize, Corpus, CorpusConfig};
pub use document::{DocId, DocKind, Document, RowHint};
pub use inference::{
    confidence_from_docs, gather_pair_evidence, PairEvidence, ProviderEvidence, RowHintKey,
};
