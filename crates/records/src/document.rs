//! Public-record document model.
//!
//! The paper's step-2/step-4 validation mines hundreds of public documents:
//! government agency filings, environmental impact statements, franchise
//! agreements, IRU agreements and swaps, press releases, right-of-way
//! filings, and class-action settlement notices. Each document, whatever its
//! genre, carries the same extractable evidence: *which cities* a fiber
//! route runs between, *which providers* are in the conduit, and sometimes
//! *which right-of-way* it follows.

use serde::{Deserialize, Serialize};

/// Index of a document in a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Document genre, mirroring the source types enumerated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocKind {
    /// A filing with a federal/state agency (e.g. the "coastal route" tax
    /// filing the paper mines for the LA–SF conduit).
    AgencyFiling,
    /// An environmental impact statement for a corridor project.
    EnvironmentalImpact,
    /// A municipal franchise agreement.
    FranchiseAgreement,
    /// An indefeasible-right-of-use agreement or swap.
    IruAgreement,
    /// A provider press release.
    PressRelease,
    /// A railroad right-of-way class-action settlement notice.
    SettlementNotice,
    /// A state-DOT right-of-way permit.
    RowFiling,
    /// A construction/engineering project plan (e.g. the Wekiva Parkway
    /// utilities section).
    ProjectPlan,
}

impl DocKind {
    /// All genres, for generation.
    pub const ALL: [DocKind; 8] = [
        DocKind::AgencyFiling,
        DocKind::EnvironmentalImpact,
        DocKind::FranchiseAgreement,
        DocKind::IruAgreement,
        DocKind::PressRelease,
        DocKind::SettlementNotice,
        DocKind::RowFiling,
        DocKind::ProjectPlan,
    ];

    /// Human-readable genre name.
    pub fn label(&self) -> &'static str {
        match self {
            DocKind::AgencyFiling => "agency filing",
            DocKind::EnvironmentalImpact => "environmental impact statement",
            DocKind::FranchiseAgreement => "franchise agreement",
            DocKind::IruAgreement => "IRU agreement",
            DocKind::PressRelease => "press release",
            DocKind::SettlementNotice => "settlement notice",
            DocKind::RowFiling => "right-of-way filing",
            DocKind::ProjectPlan => "project plan",
        }
    }
}

/// A right-of-way hint extracted from a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowHint {
    /// Route follows a highway.
    Road,
    /// Route follows a railroad.
    Rail,
    /// Route follows a pipeline.
    Pipeline,
}

/// One public record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Stable id within its corpus.
    pub id: DocId,
    /// Genre.
    pub kind: DocKind,
    /// Synthesized title (searchable).
    pub title: String,
    /// Synthesized body prose (searchable).
    pub body: String,
    /// City labels (`"City, ST"`) the record names as route endpoints.
    pub cities: Vec<String>,
    /// Provider names the record places in the conduit.
    pub isps: Vec<String>,
    /// Right-of-way evidence, if the record contains any.
    pub row: Option<RowHint>,
}

impl Document {
    /// Whether the record names both endpoint cities of a candidate link.
    pub fn mentions_pair(&self, a: &str, b: &str) -> bool {
        self.cities.iter().any(|c| c == a) && self.cities.iter().any(|c| c == b)
    }

    /// Whether the record names the given provider.
    pub fn mentions_isp(&self, isp: &str) -> bool {
        self.isps.iter().any(|i| i == isp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document {
            id: DocId(0),
            kind: DocKind::IruAgreement,
            title: "IRU agreement: Dallas, TX - Houston, TX".into(),
            body: "Carrier A grants carrier B fiber strands…".into(),
            cities: vec!["Dallas, TX".into(), "Houston, TX".into()],
            isps: vec!["AT&T".into(), "Sprint".into()],
            row: Some(RowHint::Rail),
        }
    }

    #[test]
    fn pair_mention_is_order_insensitive() {
        let d = doc();
        assert!(d.mentions_pair("Dallas, TX", "Houston, TX"));
        assert!(d.mentions_pair("Houston, TX", "Dallas, TX"));
        assert!(!d.mentions_pair("Dallas, TX", "Austin, TX"));
    }

    #[test]
    fn isp_mention_is_exact() {
        let d = doc();
        assert!(d.mentions_isp("AT&T"));
        assert!(!d.mentions_isp("Verizon"));
        assert!(!d.mentions_isp("AT"));
    }

    #[test]
    fn all_kinds_have_labels() {
        for k in DocKind::ALL {
            assert!(!k.label().is_empty());
        }
    }
}
