//! Property-based tests for the records substrate: tokenizer laws, search
//! ranking, and evidence-accumulation invariants on synthetic documents.

use intertubes_records::{
    confidence_from_docs, gather_pair_evidence, tokenize, Corpus, DocId, DocKind, Document,
};
use proptest::prelude::*;

fn arb_city() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "Dallas, TX",
        "Houston, TX",
        "Austin, TX",
        "Denver, CO",
        "Omaha, NE",
        "Boise, ID",
    ])
    .prop_map(str::to_string)
}

fn arb_isps() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec!["AT&T", "Sprint", "Level 3", "Verizon", "Zayo"]),
        1..4,
    )
    .prop_map(|v| {
        let mut v: Vec<String> = v.into_iter().map(str::to_string).collect();
        v.sort();
        v.dedup();
        v
    })
}

fn arb_docs() -> impl Strategy<Value = Vec<Document>> {
    prop::collection::vec((arb_city(), arb_city(), arb_isps()), 1..25).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b, isps))| Document {
                id: DocId(i as u32),
                kind: DocKind::ALL[i % DocKind::ALL.len()],
                title: format!("record {i}: {a} to {b}"),
                body: format!("fiber facilities installed by {}", isps.join(", ")),
                cities: vec![a, b],
                isps,
                row: None,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn tokenize_is_idempotent_and_lowercase(text in ".{0,120}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(&once, &again, "tokenization must be idempotent");
        for t in &once {
            prop_assert_eq!(t.to_lowercase(), t.clone());
            prop_assert!(t.len() >= 2);
        }
    }

    #[test]
    fn search_finds_exactly_what_mentions_all_terms(docs in arb_docs()) {
        let corpus = Corpus::from_documents(docs.clone());
        // Query each document by its own city pair; it must be in the hits.
        for d in &docs {
            let query = format!("{} {}", d.cities[0], d.cities[1]);
            let terms = tokenize(&query).len();
            let hits = corpus.search(&query, terms);
            prop_assert!(hits.contains(&d.id),
                "doc {:?} not found by its own pair query", d.id);
        }
    }

    #[test]
    fn search_ranking_is_by_hit_count(docs in arb_docs(), q in "[a-z ,]{2,40}") {
        let corpus = Corpus::from_documents(docs);
        let hits = corpus.search(&q, 1);
        // Recompute scores and verify non-increasing order.
        let score = |id: DocId| {
            let d = corpus.doc(id);
            let text = format!("{} {} {} {}", d.title, d.body, d.cities.join(" "), d.isps.join(" "));
            let doc_tokens: std::collections::HashSet<String> =
                tokenize(&text).into_iter().collect();
            let mut qt = tokenize(&q);
            qt.sort();
            qt.dedup();
            qt.iter().filter(|t| doc_tokens.contains(*t)).count()
        };
        for w in hits.windows(2) {
            prop_assert!(score(w[0]) >= score(w[1]));
        }
    }

    #[test]
    fn evidence_docs_partition_by_provider(docs in arb_docs()) {
        let corpus = Corpus::from_documents(docs.clone());
        let ev = gather_pair_evidence(&corpus, "Dallas, TX", "Houston, TX");
        // Every per-provider doc must actually mention the pair and provider.
        for p in &ev.providers {
            for id in &p.docs {
                let d = corpus.doc(*id);
                prop_assert!(d.mentions_pair("Dallas, TX", "Houston, TX"));
                prop_assert!(d.mentions_isp(&p.isp));
            }
            prop_assert!((p.confidence - confidence_from_docs(p.docs.len())).abs() < 1e-12);
        }
        // Provider doc lists cover exactly the pair's docs' isps.
        let expected: std::collections::HashSet<&str> = ev
            .docs
            .iter()
            .flat_map(|id| corpus.doc(*id).isps.iter().map(String::as_str))
            .collect();
        let got: std::collections::HashSet<&str> =
            ev.providers.iter().map(|p| p.isp.as_str()).collect();
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn confidence_ordering_follows_doc_counts(docs in arb_docs()) {
        let corpus = Corpus::from_documents(docs);
        let ev = gather_pair_evidence(&corpus, "Dallas, TX", "Houston, TX");
        for w in ev.providers.windows(2) {
            prop_assert!(w[0].confidence >= w[1].confidence);
            prop_assert!(w[0].docs.len() >= w[1].docs.len());
        }
    }
}
