//! Failure injection: how gracefully does map construction degrade as its
//! inputs get worse? The paper stresses its map is "not complete"; these
//! tests pin the *relationship* between input quality and output quality.

use intertubes_atlas::World;
use intertubes_map::{build_map, BuiltMap, PipelineConfig};
use intertubes_records::{generate_corpus, Corpus, CorpusConfig};

fn build_with(world: &World, corpus: &Corpus, cfg: &PipelineConfig) -> BuiltMap {
    build_map(
        &world.publish_maps(),
        corpus,
        &world.cities,
        &world.roads,
        &world.rails,
        cfg,
    )
}

#[test]
fn validation_tracks_corpus_coverage() {
    let world = World::reference();
    let mut fractions = Vec::new();
    for coverage in [0.0, 0.4, 0.92] {
        let corpus = generate_corpus(
            &world,
            &CorpusConfig {
                conduit_coverage: coverage,
                ..CorpusConfig::default()
            },
        );
        let built = build_with(&world, &corpus, &PipelineConfig::default());
        let validated = built.map.conduits.iter().filter(|c| c.validated).count() as f64;
        fractions.push(validated / built.map.conduits.len() as f64);
    }
    assert!(
        fractions[0] < 0.05,
        "no records → (almost) no validation: {}",
        fractions[0]
    );
    assert!(
        fractions[0] < fractions[1] && fractions[1] < fractions[2],
        "validation must track coverage: {fractions:?}"
    );
    assert!(fractions[2] > 0.8);
}

#[test]
fn empty_corpus_still_builds_a_structurally_sound_map() {
    let world = World::reference();
    let corpus = Corpus::from_documents(vec![]);
    let built = build_with(&world, &corpus, &PipelineConfig::default());
    // Published maps alone still yield the full topology…
    assert!(built.map.conduits.len() > 450);
    assert!(built.map.link_count() > 2_000);
    // …but nothing is validated and no tenants are record-inferred.
    assert!(built.map.conduits.iter().all(|c| !c.validated));
    assert!(built
        .map
        .conduits
        .iter()
        .flat_map(|c| c.tenants.iter())
        .all(|t| t.source == intertubes_map::TenancySource::PublishedMap));
}

#[test]
fn cluster_threshold_controls_conduit_merging() {
    let world = World::reference();
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    // Tiny threshold: digitization noise defeats clustering → more conduits.
    let strict = build_with(
        &world,
        &corpus,
        &PipelineConfig {
            cluster_km: 0.05,
            ..PipelineConfig::default()
        },
    );
    // Generous threshold: parallel trenches get merged → fewer conduits.
    let sloppy = build_with(
        &world,
        &corpus,
        &PipelineConfig {
            cluster_km: 50.0,
            ..PipelineConfig::default()
        },
    );
    let reference = build_with(&world, &corpus, &PipelineConfig::default());
    assert!(
        strict.map.conduits.len() > reference.map.conduits.len(),
        "strict {} vs reference {}",
        strict.map.conduits.len(),
        reference.map.conduits.len()
    );
    assert!(
        sloppy.map.conduits.len() < reference.map.conduits.len(),
        "sloppy {} vs reference {}",
        sloppy.map.conduits.len(),
        reference.map.conduits.len()
    );
    // Whatever the threshold, total tenancies from published maps are
    // conserved within the dedup semantics.
    assert!(sloppy.map.link_count() <= strict.map.link_count());
}

#[test]
fn noisy_corpus_does_not_poison_tenancy_precision() {
    use std::collections::HashSet;
    let world = World::reference();
    // Crank mis-attribution to 25 % and noise documents to 40 per 100.
    let corpus = generate_corpus(
        &world,
        &CorpusConfig {
            misattribution_rate: 0.25,
            noise_per_100: 40,
            ..CorpusConfig::default()
        },
    );
    let built = build_with(&world, &corpus, &PipelineConfig::default());
    let mut truth: HashSet<(String, String, String)> = HashSet::new();
    for (i, fp) in world.mapped_footprints().iter().enumerate() {
        let isp = world.roster[i].name.clone();
        for c in &fp.conduits {
            let cd = world.system.conduit(*c);
            let (a, b) = (world.city_label(cd.a), world.city_label(cd.b));
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            truth.insert((isp.clone(), a, b));
        }
    }
    let mut found = 0usize;
    let mut correct = 0usize;
    for c in &built.map.conduits {
        let a = built.map.nodes[c.a.index()].label.clone();
        let b = built.map.nodes[c.b.index()].label.clone();
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        for t in &c.tenants {
            found += 1;
            correct += truth.contains(&(t.isp.clone(), a.clone(), b.clone())) as usize;
        }
    }
    let precision = correct as f64 / found as f64;
    // The two-document confidence threshold absorbs most one-off lies.
    assert!(precision > 0.85, "precision under heavy noise: {precision}");
}

#[test]
fn long_haul_policy_filters_final_map() {
    let world = World::reference();
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    // Draconian policy: nothing qualifies → empty final map.
    let cfg = PipelineConfig {
        policy: intertubes_map::LongHaulPolicy {
            min_miles: 1e9,
            min_population: u32::MAX,
            min_providers: usize::MAX,
        },
        ..PipelineConfig::default()
    };
    let built = build_with(&world, &corpus, &cfg);
    assert_eq!(
        built.map.conduits.len(),
        0,
        "draconian policy must drop everything"
    );
    assert!(
        built.reports[2].conduits > 400,
        "step 3 still saw the full map"
    );
    // The paper's actual thresholds drop nothing in a long-haul-only world.
    let built = build_with(&world, &corpus, &PipelineConfig::default());
    assert!(built.map.conduits.len() > 450);
}

#[test]
fn pipeline_without_transport_layers_still_places_pop_links() {
    // Degenerate transport nets (empty graphs) force step 3 onto the
    // straight-line fallback; the pipeline must not panic and the POP-only
    // tenancies must still land.
    use intertubes_atlas::TransportNetwork;
    use intertubes_geo::CorridorLayer;
    let world = World::reference();
    let corpus = generate_corpus(&world, &CorpusConfig::default());
    let empty_road = TransportNetwork {
        layer: CorridorLayer::Road,
        graph: {
            let mut g = intertubes_graph::MultiGraph::new();
            for i in 0..world.cities.len() {
                g.add_node(intertubes_atlas::CityId(i as u32));
            }
            g
        },
    };
    let empty_rail = TransportNetwork {
        layer: CorridorLayer::Rail,
        graph: empty_road.graph.clone(),
    };
    let built = build_map(
        &world.publish_maps(),
        &corpus,
        &world.cities,
        &empty_road,
        &empty_rail,
        &PipelineConfig::default(),
    );
    assert!(
        built.map.link_count() > 2_000,
        "links {}",
        built.map.link_count()
    );
}
