//! §3: geography of fiber deployments — co-location of constructed-map
//! conduits with transportation infrastructure (Fig. 4), and the accounting
//! of conduits on no known road/rail corridor (Fig. 5's pipeline cases).

use intertubes_atlas::TransportNetwork;
use intertubes_geo::{CorridorIndex, CorridorLayer, GeoError, OverlapParams};
use serde::{Deserialize, Serialize};

use crate::model::FiberMap;

/// Histogram of per-conduit co-location fractions for one layer (Fig. 4's
/// plotted quantity): `bins[i]` counts conduits whose co-located fraction
/// falls in `[i/n, (i+1)/n)` (last bin closed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationHistogram {
    /// Bin counts.
    pub bins: Vec<usize>,
    /// Total conduits measured.
    pub total: usize,
}

impl ColocationHistogram {
    fn new(n: usize) -> Self {
        ColocationHistogram {
            bins: vec![0; n],
            total: 0,
        }
    }

    fn add(&mut self, fraction: f64) {
        let n = self.bins.len();
        let i = ((fraction * n as f64) as usize).min(n - 1);
        self.bins[i] += 1;
        self.total += 1;
    }

    /// Relative frequency per bin.
    pub fn relative(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.bins.iter().map(|&b| b as f64 / t).collect()
    }

    /// Mean co-located fraction (bin midpoints).
    pub fn mean(&self) -> f64 {
        let n = self.bins.len() as f64;
        let t = self.total.max(1) as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| b as f64 * (i as f64 + 0.5) / n)
            .sum::<f64>()
            / t
    }
}

/// The full Fig. 4 result: histograms for road, rail and their union, plus
/// the off-corridor accounting the paper explains with pipelines (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationReport {
    /// Road co-location histogram.
    pub road: ColocationHistogram,
    /// Rail co-location histogram.
    pub rail: ColocationHistogram,
    /// Road-or-rail co-location histogram.
    pub road_or_rail: ColocationHistogram,
    /// Conduits predominantly (> 50 %) on *no* road/rail corridor.
    pub off_corridor: usize,
    /// Of those, conduits explained by a pipeline right-of-way.
    pub pipeline_explained: usize,
    /// Conduits measured.
    pub total: usize,
}

/// Builds a [`CorridorIndex`] over the public transport layers.
pub fn corridor_index(
    roads: &TransportNetwork,
    rails: &TransportNetwork,
    pipelines: &TransportNetwork,
    cell_km: f64,
) -> Result<CorridorIndex, GeoError> {
    let mut idx = CorridorIndex::new(cell_km)?;
    for (tag, g) in roads.geometries() {
        idx.add_corridor(CorridorLayer::Road, g, tag);
    }
    for (tag, g) in rails.geometries() {
        idx.add_corridor(CorridorLayer::Rail, g, tag);
    }
    for (tag, g) in pipelines.geometries() {
        idx.add_corridor(CorridorLayer::Pipeline, g, tag);
    }
    Ok(idx)
}

/// Computes the Fig. 4 / Fig. 5 co-location analysis for a constructed map.
pub fn analyze_colocation(
    map: &FiberMap,
    idx: &CorridorIndex,
    params: &OverlapParams,
    bins: usize,
) -> Result<ColocationReport, GeoError> {
    let mut road = ColocationHistogram::new(bins);
    let mut rail = ColocationHistogram::new(bins);
    let mut union = ColocationHistogram::new(bins);
    let mut off = 0usize;
    let mut pipe_explained = 0usize;
    for c in &map.conduits {
        let b = idx.colocation(&c.geometry, params)?;
        road.add(b.road);
        rail.add(b.rail);
        union.add(b.road_or_rail);
        if b.road_or_rail < 0.5 {
            off += 1;
            if b.pipeline >= 0.5 {
                pipe_explained += 1;
            }
        }
    }
    Ok(ColocationReport {
        road,
        rail,
        road_or_rail: union,
        off_corridor: off,
        pipeline_explained: pipe_explained,
        total: map.conduits.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_map, PipelineConfig};
    use intertubes_atlas::World;
    use intertubes_records::{generate_corpus, CorpusConfig};

    fn report() -> ColocationReport {
        let w = World::reference();
        let corpus = generate_corpus(&w, &CorpusConfig::default());
        let built = build_map(
            &w.publish_maps(),
            &corpus,
            &w.cities,
            &w.roads,
            &w.rails,
            &PipelineConfig::default(),
        );
        let idx = corridor_index(&w.roads, &w.rails, &w.pipelines, 5.0).unwrap();
        analyze_colocation(&built.map, &idx, &OverlapParams::default(), 10).unwrap()
    }

    #[test]
    fn histogram_bins_and_totals() {
        let mut h = ColocationHistogram::new(10);
        h.add(0.0);
        h.add(0.05);
        h.add(0.95);
        h.add(1.0); // clamps into the last bin
        assert_eq!(h.bins[0], 2);
        assert_eq!(h.bins[9], 2);
        assert_eq!(h.total, 4);
        let rel = h.relative();
        assert!((rel.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.mean() - 0.5).abs() < 0.1);
    }

    #[test]
    fn fig4_shape_holds() {
        let r = report();
        // Paper: a significant fraction of links co-located with roads;
        // roads more common than rail; union highest of all.
        assert!(
            r.road.mean() > r.rail.mean(),
            "road {} vs rail {}",
            r.road.mean(),
            r.rail.mean()
        );
        assert!(r.road_or_rail.mean() >= r.road.mean());
        assert!(
            r.road_or_rail.mean() > 0.6,
            "union mean {}",
            r.road_or_rail.mean()
        );
        // Most conduits are predominantly on a corridor.
        assert!(
            r.off_corridor * 5 < r.total,
            "{} of {} off-corridor",
            r.off_corridor,
            r.total
        );
    }

    #[test]
    fn fig5_pipeline_explains_some_off_corridor() {
        let r = report();
        // The paper explains part (not all) of the off-corridor conduits
        // with pipeline rights-of-way.
        assert!(r.pipeline_explained <= r.off_corridor);
        if r.off_corridor > 10 {
            assert!(
                r.pipeline_explained > 0,
                "expected some pipeline-explained conduits"
            );
        }
    }
}
