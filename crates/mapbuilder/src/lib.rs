//! Long-haul fiber-map construction (the paper's §2 and §3).
//!
//! Consumes only *public* artifacts — provider-published maps, the public
//! records corpus, a city gazetteer and transportation layers — and
//! reconstructs the US long-haul map: nodes, conduits, tenants, validation
//! status, and right-of-way attribution. The four-step pipeline mirrors the
//! paper exactly; see [`pipeline::build_map`].
//!
//! Also provides the §3 co-location analysis (`colocation`), map
//! summaries / Table 1 extraction and GeoJSON export (`stats`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod cluster;
mod colocation;
mod model;
mod pipeline;
mod stats;

pub use annotate::{to_annotated_geojson, MapAnnotations};
pub use cluster::{geometry_separation_km, same_conduit};
pub use colocation::{analyze_colocation, corridor_index, ColocationHistogram, ColocationReport};
pub use model::{
    FiberMap, LongHaulPolicy, MapConduit, MapConduitId, MapNode, MapNodeId, Provenance, Tenancy,
    TenancySource,
};
pub use pipeline::{build_map, build_map_checked, BuiltMap, PipelineConfig, StepReport};
pub use stats::{summarize, table1_rows, to_geojson, MapSummary, ProviderRow};

/// Errors of the map-construction layer. Raised only under
/// [`DegradationPolicy::Strict`](intertubes_degrade::DegradationPolicy):
/// the lenient pipeline degrades (drops, repairs, flags) instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A geocoded link arrived without geometry and neither endpoint pair
    /// could be repaired from the gazetteer.
    MissingGeometry {
        /// Publishing provider.
        isp: String,
        /// One endpoint label.
        a: String,
        /// The other endpoint label.
        b: String,
    },
    /// A link's geometry carries non-finite or out-of-range coordinates.
    InvalidGeometry {
        /// Publishing provider.
        isp: String,
        /// One endpoint label.
        a: String,
        /// The other endpoint label.
        b: String,
    },
    /// One provider published the same link twice, geometry and all.
    DuplicateLink {
        /// Publishing provider.
        isp: String,
        /// One endpoint label.
        a: String,
        /// The other endpoint label.
        b: String,
    },
    /// A POP-only link names an endpoint absent from the gazetteer.
    UnknownEndpoint {
        /// Publishing provider.
        isp: String,
        /// The unresolvable endpoint label.
        label: String,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::MissingGeometry { isp, a, b } => {
                write!(f, "{isp}: geocoded link {a} — {b} has no geometry")
            }
            MapError::InvalidGeometry { isp, a, b } => {
                write!(f, "{isp}: link {a} — {b} has invalid coordinates")
            }
            MapError::DuplicateLink { isp, a, b } => {
                write!(f, "{isp}: link {a} — {b} published twice")
            }
            MapError::UnknownEndpoint { isp, label } => {
                write!(f, "{isp}: endpoint {label:?} is not in the gazetteer")
            }
        }
    }
}

impl std::error::Error for MapError {}
