//! Long-haul fiber-map construction (the paper's §2 and §3).
//!
//! Consumes only *public* artifacts — provider-published maps, the public
//! records corpus, a city gazetteer and transportation layers — and
//! reconstructs the US long-haul map: nodes, conduits, tenants, validation
//! status, and right-of-way attribution. The four-step pipeline mirrors the
//! paper exactly; see [`pipeline::build_map`].
//!
//! Also provides the §3 co-location analysis (`colocation`), map
//! summaries / Table 1 extraction and GeoJSON export (`stats`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotate;
mod cluster;
mod colocation;
mod model;
mod pipeline;
mod stats;

pub use annotate::{to_annotated_geojson, MapAnnotations};
pub use cluster::{geometry_separation_km, same_conduit};
pub use colocation::{analyze_colocation, corridor_index, ColocationHistogram, ColocationReport};
pub use model::{
    FiberMap, LongHaulPolicy, MapConduit, MapConduitId, MapNode, MapNodeId, Provenance, Tenancy,
    TenancySource,
};
pub use pipeline::{build_map, BuiltMap, PipelineConfig, StepReport};
pub use stats::{summarize, table1_rows, to_geojson, MapSummary, ProviderRow};
