//! Map summaries (Fig. 1 features, Table 1 rows) and GeoJSON export.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::model::{FiberMap, Provenance};

/// A Table 1 row: per-provider node and link counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderRow {
    /// Provider name.
    pub isp: String,
    /// Distinct endpoint cities in the provider's links.
    pub nodes: usize,
    /// Long-haul links (conduit tenancies).
    pub links: usize,
}

/// Headline statistics of a constructed map (the §2.5 summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapSummary {
    /// Node count.
    pub nodes: usize,
    /// Link (tenancy) count.
    pub links: usize,
    /// Conduit count.
    pub conduits: usize,
    /// Conduits with documentary validation.
    pub validated_conduits: usize,
    /// Conduits introduced by step 1 vs step 3.
    pub step1_conduits: usize,
    /// Conduits introduced by step 3 (ROW-snapped).
    pub step3_conduits: usize,
    /// Top long-haul hubs: `(label, conduit degree)`, descending.
    pub hubs: Vec<(String, usize)>,
    /// Total conduit mileage, km.
    pub total_km: f64,
}

/// Summarizes a constructed map.
pub fn summarize(map: &FiberMap) -> MapSummary {
    let mut degree = vec![0usize; map.nodes.len()];
    let mut total_km = 0.0;
    let mut step1 = 0;
    let mut step3 = 0;
    for c in &map.conduits {
        degree[c.a.index()] += 1;
        degree[c.b.index()] += 1;
        total_km += c.geometry.length_km();
        match c.provenance {
            Provenance::Step1 => step1 += 1,
            Provenance::Step3 => step3 += 1,
        }
    }
    let mut hubs: Vec<(String, usize)> = map
        .nodes
        .iter()
        .zip(degree.iter())
        .map(|(n, &d)| (n.label.clone(), d))
        .collect();
    hubs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hubs.truncate(10);
    MapSummary {
        nodes: map.nodes.len(),
        links: map.link_count(),
        conduits: map.conduits.len(),
        validated_conduits: map.conduits.iter().filter(|c| c.validated).count(),
        step1_conduits: step1,
        step3_conduits: step3,
        hubs,
        total_km,
    }
}

/// Produces Table 1 rows for the named providers, in the given order.
pub fn table1_rows(map: &FiberMap, isps: &[&str]) -> Vec<ProviderRow> {
    isps.iter()
        .map(|isp| {
            let (nodes, links) = map.provider_counts(isp);
            ProviderRow {
                isp: isp.to_string(),
                nodes,
                links,
            }
        })
        .collect()
}

/// Exports the map as a GeoJSON `FeatureCollection`: one `LineString` per
/// conduit (with tenants/validation properties) and one `Point` per node.
pub fn to_geojson(map: &FiberMap) -> Value {
    let mut features = Vec::new();
    for n in &map.nodes {
        features.push(json!({
            "type": "Feature",
            "geometry": {
                "type": "Point",
                "coordinates": [n.location.lon, n.location.lat],
            },
            "properties": { "label": n.label, "kind": "city" },
        }));
    }
    for (i, c) in map.conduits.iter().enumerate() {
        let coords: Vec<[f64; 2]> = c.geometry.points().iter().map(|p| [p.lon, p.lat]).collect();
        let tenants: Vec<&str> = c.tenants.iter().map(|t| t.isp.as_str()).collect();
        features.push(json!({
            "type": "Feature",
            "geometry": { "type": "LineString", "coordinates": coords },
            "properties": {
                "kind": "conduit",
                "id": i,
                "a": map.nodes[c.a.index()].label,
                "b": map.nodes[c.b.index()].label,
                "tenants": tenants,
                "tenant_count": tenants.len(),
                "validated": c.validated,
                "provenance": match c.provenance {
                    Provenance::Step1 => "step1",
                    Provenance::Step3 => "step3",
                },
            },
        }));
    }
    json!({ "type": "FeatureCollection", "features": features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MapConduit, Tenancy, TenancySource};
    use intertubes_geo::{GeoPoint, Polyline};

    fn sample() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("Dallas, TX", GeoPoint::new_unchecked(32.78, -96.80));
        let b = m.ensure_node("Houston, TX", GeoPoint::new_unchecked(29.76, -95.37));
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(32.78, -96.80),
                GeoPoint::new_unchecked(29.76, -95.37),
            ),
            tenants: vec![
                Tenancy {
                    isp: "AT&T".into(),
                    source: TenancySource::PublishedMap,
                },
                Tenancy {
                    isp: "Sprint".into(),
                    source: TenancySource::Records,
                },
            ],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&sample());
        assert_eq!(s.nodes, 2);
        assert_eq!(s.links, 2);
        assert_eq!(s.conduits, 1);
        assert_eq!(s.validated_conduits, 1);
        assert_eq!(s.step1_conduits, 1);
        assert_eq!(s.step3_conduits, 0);
        assert!(s.total_km > 300.0 && s.total_km < 450.0);
        assert_eq!(s.hubs[0].1, 1);
    }

    #[test]
    fn table1_row_extraction() {
        let rows = table1_rows(&sample(), &["AT&T", "Nobody"]);
        assert_eq!(rows[0].nodes, 2);
        assert_eq!(rows[0].links, 1);
        assert_eq!(rows[1].nodes, 0);
        assert_eq!(rows[1].links, 0);
    }

    #[test]
    fn geojson_is_well_formed() {
        let gj = to_geojson(&sample());
        assert_eq!(gj["type"], "FeatureCollection");
        let feats = gj["features"].as_array().unwrap();
        assert_eq!(feats.len(), 3); // 2 points + 1 line
        let line = feats
            .iter()
            .find(|f| f["geometry"]["type"] == "LineString")
            .unwrap();
        assert_eq!(line["properties"]["tenant_count"], 2);
        assert_eq!(line["properties"]["validated"], true);
        // Coordinates are [lon, lat] per the GeoJSON spec.
        let c0 = &line["geometry"]["coordinates"][0];
        assert!(c0[0].as_f64().unwrap() < -90.0, "lon first");
    }
}
