//! The constructed fiber-map model.
//!
//! This is the paper's artifact: nodes (cities), long-haul links (one per
//! provider per conduit), and conduits (physical trenches with tenant
//! lists). Unlike the ground truth in `intertubes-atlas`, everything here is
//! *reconstructed* from published maps and public records, with provenance
//! and validation status attached.

use intertubes_geo::{GeoPoint, Polyline};
use intertubes_graph::{MultiGraph, NodeId};
use intertubes_records::RowHintKey;
use serde::{Deserialize, Serialize};

/// Index of a node in a [`FiberMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapNodeId(pub u32);

/// Index of a conduit in a [`FiberMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapConduitId(pub u32);

impl MapNodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MapConduitId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which pipeline step introduced an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// From a geocoded provider map (step 1).
    Step1,
    /// Snapped from a POP-only provider map (step 3).
    Step3,
}

/// A city node in the constructed map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapNode {
    /// `"City, ST"` label.
    pub label: String,
    /// Geocoded location (from the public gazetteer).
    pub location: GeoPoint,
}

/// How a tenant was attributed to a conduit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenancySource {
    /// The provider's own published map shows the link.
    PublishedMap,
    /// Inferred from public records (steps 2/4).
    Records,
}

/// One tenant entry on a conduit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenancy {
    /// Provider name.
    pub isp: String,
    /// Attribution source.
    pub source: TenancySource,
}

/// A physical conduit in the constructed map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapConduit {
    /// One endpoint.
    pub a: MapNodeId,
    /// The other endpoint.
    pub b: MapNodeId,
    /// Reconstructed geometry (representative published geometry for step-1
    /// conduits; ROW-snapped geometry for step-3 conduits).
    pub geometry: Polyline,
    /// Tenants, sorted by provider name, deduplicated.
    pub tenants: Vec<Tenancy>,
    /// Introducing step.
    pub provenance: Provenance,
    /// Whether steps 2/4 found documentary support for the conduit.
    pub validated: bool,
    /// Majority right-of-way evidence from the records, if any.
    pub row: Option<RowHintKey>,
}

impl MapConduit {
    /// Number of distinct tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether `isp` rents fiber here.
    pub fn has_tenant(&self, isp: &str) -> bool {
        self.tenants.iter().any(|t| t.isp == isp)
    }
}

/// The long-haul definition from §2: a link qualifies if it spans at least
/// 30 miles, or connects population centers of ≥ 100 000 people, or is
/// shared by at least 2 providers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongHaulPolicy {
    /// Minimum span in miles (paper: 30).
    pub min_miles: f64,
    /// Minimum endpoint population (paper: 100 000).
    pub min_population: u32,
    /// Minimum number of sharing providers (paper: 2).
    pub min_providers: usize,
}

impl Default for LongHaulPolicy {
    fn default() -> Self {
        LongHaulPolicy {
            min_miles: 30.0,
            min_population: 100_000,
            min_providers: 2,
        }
    }
}

impl LongHaulPolicy {
    /// Applies the paper's disjunctive definition.
    pub fn qualifies(&self, span_km: f64, pop_a: u32, pop_b: u32, providers: usize) -> bool {
        const KM_PER_MILE: f64 = 1.609_344;
        span_km >= self.min_miles * KM_PER_MILE
            || (pop_a >= self.min_population && pop_b >= self.min_population)
            || providers >= self.min_providers
    }
}

/// The constructed long-haul fiber map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FiberMap {
    /// City nodes.
    pub nodes: Vec<MapNode>,
    /// Physical conduits.
    pub conduits: Vec<MapConduit>,
}

impl FiberMap {
    /// Finds a node by label.
    pub fn find_node(&self, label: &str) -> Option<MapNodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| MapNodeId(i as u32))
    }

    /// Finds or creates a node.
    pub fn ensure_node(&mut self, label: &str, location: GeoPoint) -> MapNodeId {
        if let Some(id) = self.find_node(label) {
            return id;
        }
        let id = MapNodeId(self.nodes.len() as u32);
        self.nodes.push(MapNode {
            label: label.to_string(),
            location,
        });
        id
    }

    /// Total long-haul links: one per (provider, conduit) tenancy — the
    /// paper's link-counting convention.
    pub fn link_count(&self) -> usize {
        self.conduits.iter().map(|c| c.tenants.len()).sum()
    }

    /// All conduits joining two nodes (parallel conduits are distinct).
    pub fn conduits_between(&self, a: MapNodeId, b: MapNodeId) -> Vec<MapConduitId> {
        self.conduits
            .iter()
            .enumerate()
            .filter(|(_, c)| (c.a == a && c.b == b) || (c.a == b && c.b == a))
            .map(|(i, _)| MapConduitId(i as u32))
            .collect()
    }

    /// Distinct provider names present in the map, sorted.
    pub fn providers(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .conduits
            .iter()
            .flat_map(|c| c.tenants.iter().map(|t| t.isp.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Per-provider (node count, link count), the paper's Table 1 quantity.
    pub fn provider_counts(&self, isp: &str) -> (usize, usize) {
        let mut nodes: Vec<MapNodeId> = Vec::new();
        let mut links = 0usize;
        for c in &self.conduits {
            if c.has_tenant(isp) {
                links += 1;
                nodes.push(c.a);
                nodes.push(c.b);
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        (nodes.len(), links)
    }

    /// Builds the conduit multigraph: node ids equal map node indices, and
    /// edges are added in conduit order, so edge ids *and* edge payloads
    /// both equal conduit indices (consumers mask conduit `i` by setting
    /// `banned_edges[i]` directly). Used by the risk and mitigation crates.
    pub fn graph(&self) -> MultiGraph<MapNodeId, MapConduitId> {
        let mut g = MultiGraph::with_capacity(self.nodes.len(), self.conduits.len());
        for i in 0..self.nodes.len() {
            g.add_node(MapNodeId(i as u32));
        }
        for (i, c) in self.conduits.iter().enumerate() {
            g.add_edge(NodeId(c.a.0), NodeId(c.b.0), MapConduitId(i as u32));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    fn tenancy(isp: &str) -> Tenancy {
        Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        }
    }

    fn sample_map() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("Dallas, TX", p(32.78, -96.80));
        let b = m.ensure_node("Houston, TX", p(29.76, -95.37));
        let c = m.ensure_node("Austin, TX", p(30.27, -97.74));
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(p(32.78, -96.80), p(29.76, -95.37)),
            tenants: vec![tenancy("AT&T"), tenancy("Sprint")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(p(32.78, -96.80), p(29.76, -95.37)),
            tenants: vec![tenancy("Verizon")],
            provenance: Provenance::Step3,
            validated: false,
            row: None,
        });
        m.conduits.push(MapConduit {
            a: c,
            b,
            geometry: Polyline::straight(p(30.27, -97.74), p(29.76, -95.37)),
            tenants: vec![tenancy("AT&T")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    #[test]
    fn ensure_node_deduplicates() {
        let mut m = FiberMap::default();
        let a = m.ensure_node("Dallas, TX", p(32.78, -96.80));
        let b = m.ensure_node("Dallas, TX", p(32.78, -96.80));
        assert_eq!(a, b);
        assert_eq!(m.nodes.len(), 1);
    }

    #[test]
    fn link_counting_is_per_tenancy() {
        let m = sample_map();
        assert_eq!(m.link_count(), 4);
        assert_eq!(m.provider_counts("AT&T"), (3, 2));
        assert_eq!(m.provider_counts("Verizon"), (2, 1));
        assert_eq!(m.provider_counts("Nobody"), (0, 0));
    }

    #[test]
    fn parallel_conduits_are_distinct() {
        let m = sample_map();
        let a = m.find_node("Dallas, TX").unwrap();
        let b = m.find_node("Houston, TX").unwrap();
        assert_eq!(m.conduits_between(a, b).len(), 2);
        assert_eq!(m.conduits_between(b, a).len(), 2);
    }

    #[test]
    fn providers_sorted_unique() {
        let m = sample_map();
        assert_eq!(m.providers(), vec!["AT&T", "Sprint", "Verizon"]);
    }

    #[test]
    fn graph_mirrors_structure() {
        let m = sample_map();
        let g = m.graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edges_between(NodeId(0), NodeId(1)).count(), 2);
    }

    #[test]
    fn long_haul_policy_is_disjunctive() {
        let p = LongHaulPolicy::default();
        // Long span alone qualifies.
        assert!(p.qualifies(60.0, 10, 10, 1));
        // Big endpoints alone qualify.
        assert!(p.qualifies(5.0, 200_000, 150_000, 1));
        // Sharing alone qualifies.
        assert!(p.qualifies(5.0, 10, 10, 2));
        // None of the three: not long-haul.
        assert!(!p.qualifies(5.0, 10, 10, 1));
        // 30 miles ≈ 48.3 km boundary.
        assert!(p.qualifies(48.3, 10, 10, 1));
        assert!(!p.qualifies(48.2, 10, 10, 1));
    }
}
