//! Annotated map export — the paper's stated future work ("we also plan to
//! generate annotated versions of our map, focusing in particular on
//! traffic and propagation delay", §8).
//!
//! Produces a GeoJSON `FeatureCollection` whose conduit features carry,
//! beyond tenancy and provenance, per-conduit traffic counts (from a
//! traceroute overlay) and propagation delay.

use intertubes_geo::fiber_delay_us;
use serde_json::{json, Value};

use crate::model::{FiberMap, Provenance};

/// Per-conduit annotations to embed. All slices are indexed by conduit;
/// empty slices mean "skip this annotation".
#[derive(Debug, Clone, Default)]
pub struct MapAnnotations {
    /// Probe traversals per conduit (Tables 2–3's frequency, any scale).
    pub traffic: Vec<u64>,
    /// Tenant count per conduit under the analysis ISP set (risk-matrix
    /// `shared`, possibly traffic-augmented).
    pub shared: Vec<u16>,
}

/// Exports the map with traffic/delay/risk annotations.
pub fn to_annotated_geojson(map: &FiberMap, ann: &MapAnnotations) -> Value {
    let mut features = Vec::new();
    for n in &map.nodes {
        features.push(json!({
            "type": "Feature",
            "geometry": { "type": "Point", "coordinates": [n.location.lon, n.location.lat] },
            "properties": { "label": n.label, "kind": "city" },
        }));
    }
    // Normalizers for relative annotation scales.
    let max_traffic = ann.traffic.iter().copied().max().unwrap_or(0).max(1);
    for (i, c) in map.conduits.iter().enumerate() {
        let coords: Vec<[f64; 2]> = c.geometry.points().iter().map(|p| [p.lon, p.lat]).collect();
        let tenants: Vec<&str> = c.tenants.iter().map(|t| t.isp.as_str()).collect();
        let length_km = c.geometry.length_km();
        let mut props = json!({
            "kind": "conduit",
            "id": i,
            "a": map.nodes[c.a.index()].label,
            "b": map.nodes[c.b.index()].label,
            "tenants": tenants,
            "tenant_count": tenants.len(),
            "validated": c.validated,
            "provenance": match c.provenance {
                Provenance::Step1 => "step1",
                Provenance::Step3 => "step3",
            },
            "length_km": (length_km * 10.0).round() / 10.0,
            "delay_us": fiber_delay_us(length_km).round(),
        });
        let obj = props.as_object_mut().expect("props is an object");
        if let Some(t) = ann.traffic.get(i) {
            obj.insert("traffic_probes".into(), json!(t));
            obj.insert(
                "traffic_relative".into(),
                json!((*t as f64 / max_traffic as f64 * 1000.0).round() / 1000.0),
            );
        }
        if let Some(s) = ann.shared.get(i) {
            obj.insert("shared_risk".into(), json!(s));
        }
        features.push(json!({
            "type": "Feature",
            "geometry": { "type": "LineString", "coordinates": coords },
            "properties": props,
        }));
    }
    json!({ "type": "FeatureCollection", "features": features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MapConduit, Tenancy, TenancySource};
    use intertubes_geo::{GeoPoint, Polyline};

    fn sample() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("Dallas, TX", GeoPoint::new_unchecked(32.78, -96.80));
        let b = m.ensure_node("Houston, TX", GeoPoint::new_unchecked(29.76, -95.37));
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(32.78, -96.80),
                GeoPoint::new_unchecked(29.76, -95.37),
            ),
            tenants: vec![Tenancy {
                isp: "AT&T".into(),
                source: TenancySource::PublishedMap,
            }],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    #[test]
    fn annotations_embed_traffic_and_delay() {
        let m = sample();
        let ann = MapAnnotations {
            traffic: vec![420],
            shared: vec![7],
        };
        let gj = to_annotated_geojson(&m, &ann);
        let line = gj["features"]
            .as_array()
            .unwrap()
            .iter()
            .find(|f| f["geometry"]["type"] == "LineString")
            .unwrap();
        assert_eq!(line["properties"]["traffic_probes"], 420);
        assert_eq!(line["properties"]["traffic_relative"], 1.0);
        assert_eq!(line["properties"]["shared_risk"], 7);
        // ~360 km of fiber ≈ 1.7–1.9 ms.
        let delay = line["properties"]["delay_us"].as_f64().unwrap();
        assert!((1_500.0..2_200.0).contains(&delay), "delay {delay}");
        assert!(line["properties"]["length_km"].as_f64().unwrap() > 300.0);
    }

    #[test]
    fn empty_annotations_mean_plain_properties() {
        let m = sample();
        let gj = to_annotated_geojson(&m, &MapAnnotations::default());
        let line = gj["features"]
            .as_array()
            .unwrap()
            .iter()
            .find(|f| f["geometry"]["type"] == "LineString")
            .unwrap();
        assert!(line["properties"].get("traffic_probes").is_none());
        assert!(line["properties"].get("shared_risk").is_none());
        assert!(line["properties"].get("delay_us").is_some());
    }
}
