//! The four-step map-construction pipeline (§2 of the paper).
//!
//! 1. **Build an initial map** from geocoded provider maps: link geometries
//!    are clustered into conduits (two providers drawing the same trench →
//!    one conduit with two tenants).
//! 2. **Check the initial map** against the public-records corpus: validate
//!    conduit locations, extract right-of-way evidence, and infer additional
//!    tenants that the published maps do not show.
//! 3. **Build an augmented map**: POP-only provider maps are added by
//!    aligning each logical link with existing conduits where possible, or
//!    snapping it onto the closest known right-of-way (road, then rail).
//! 4. **Validate the augmented map** — the records pass again, over the
//!    conduits and tenants introduced in step 3.

use std::collections::HashMap;

use intertubes_atlas::{City, MapKind, PublishedLink, PublishedMap, TransportNetwork};
use intertubes_degrade::{DegradationAction, DegradationPolicy, DegradationReport};
use intertubes_geo::{GeoPoint, Polyline};
use intertubes_records::{gather_pair_evidence, Corpus};
use serde::{Deserialize, Serialize};

use crate::cluster::same_conduit;
use crate::model::{FiberMap, MapConduit, MapConduitId, MapNodeId, Provenance, Tenancy, TenancySource};
use crate::MapError;

/// Pipeline tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Geometry-separation threshold for two published links to be the same
    /// conduit (km).
    pub cluster_km: f64,
    /// Evidence confidence required to add a tenant from records.
    pub confidence: f64,
    /// The §2 long-haul definition: conduits qualifying under none of its
    /// three criteria are dropped from the final map (metro-scale links are
    /// out of scope).
    pub policy: crate::model::LongHaulPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            cluster_km: 2.5,
            confidence: 0.5,
            policy: crate::model::LongHaulPolicy::default(),
        }
    }
}

/// Map totals after one pipeline step (the paper reports these after each
/// step: e.g. step 1 → 267 nodes / 1258 links / 512 conduits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Pipeline step (1–4).
    pub step: u8,
    /// Node total after the step.
    pub nodes: usize,
    /// Link (tenancy) total after the step.
    pub links: usize,
    /// Conduit total after the step.
    pub conduits: usize,
    /// Conduits with documentary validation after the step.
    pub validated_conduits: usize,
}

/// The pipeline's output: the constructed map plus per-step reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuiltMap {
    /// The constructed long-haul fiber map.
    pub map: FiberMap,
    /// Totals after each of the four steps.
    pub reports: Vec<StepReport>,
}

/// Public gazetteer lookups used by the pipeline.
struct Gazetteer<'a> {
    by_label: HashMap<String, &'a City>,
}

impl<'a> Gazetteer<'a> {
    fn new(cities: &'a [City]) -> Self {
        Gazetteer {
            by_label: cities.iter().map(|c| (c.label(), c)).collect(),
        }
    }

    fn location(&self, label: &str) -> Option<GeoPoint> {
        self.by_label.get(label).map(|c| c.location)
    }
}

/// Corridor geometry lookup by normalized label pair.
struct CorridorLookup {
    by_pair: HashMap<(String, String), Polyline>,
}

impl CorridorLookup {
    fn new(net: &TransportNetwork, cities: &[City]) -> Self {
        let mut by_pair = HashMap::new();
        for e in net.graph.edge_refs() {
            let la = cities[e.u.index()].label();
            let lb = cities[e.v.index()].label();
            let key = if la <= lb { (la, lb) } else { (lb, la) };
            by_pair
                .entry(key)
                .or_insert_with(|| e.data.geometry.clone());
        }
        CorridorLookup { by_pair }
    }

    fn get(&self, a: &str, b: &str) -> Option<&Polyline> {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.by_pair.get(&key)
    }
}

fn pair_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

fn report(step: u8, map: &FiberMap) -> StepReport {
    StepReport {
        step,
        nodes: map.nodes.len(),
        links: map.link_count(),
        conduits: map.conduits.len(),
        validated_conduits: map.conduits.iter().filter(|c| c.validated).count(),
    }
}

/// A geocoded link awaiting clustering: the per-ISP snap phase of step 1
/// resolves nodes serially (node ids are assignment-order-sensitive), then
/// clustering fans out per city pair.
struct PendingGeocoded {
    /// Global arrival index across all published links (defines conduit
    /// id assignment order, exactly as in the serial formulation).
    arrival: usize,
    isp: String,
    na: MapNodeId,
    nb: MapNodeId,
    geometry: Polyline,
}

/// One conduit produced by clustering a pair group, before global id
/// assignment.
struct LocalConduit {
    /// Arrival index of the link that created the conduit.
    created: usize,
    a: MapNodeId,
    b: MapNodeId,
    geometry: Polyline,
    /// Tenant ISPs in insertion order (sorted at materialization).
    tenants: Vec<String>,
}

fn sorted_tenancies(names: &[String], source: TenancySource) -> Vec<Tenancy> {
    let mut tenants: Vec<Tenancy> = names
        .iter()
        .map(|isp| Tenancy {
            isp: isp.clone(),
            source,
        })
        .collect();
    tenants.sort_by(|x, y| x.isp.cmp(&y.isp));
    tenants
}

/// Groups links by normalized pair key, preserving first-arrival order of
/// groups and arrival order within each group.
fn group_by_pair<T>(links: Vec<((String, String), T)>) -> Vec<((String, String), Vec<T>)> {
    let mut index: HashMap<(String, String), usize> = HashMap::new();
    let mut groups: Vec<((String, String), Vec<T>)> = Vec::new();
    for (key, link) in links {
        match index.get(&key) {
            Some(&g) => groups[g].1.push(link),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![link]));
            }
        }
    }
    groups
}

/// Step 1: ingest geocoded maps, clustering link geometries into conduits.
///
/// Links of different city pairs never cluster together (the candidate set
/// is always the pair's own conduits), so after a serial node-resolution
/// prepass the geometry clustering — the hot part — fans out one city pair
/// per task. Conduits are then materialized in arrival order of their
/// creating link, which reproduces the serial id assignment byte for byte.
fn step1(
    map: &mut FiberMap,
    pair_index: &mut HashMap<(String, String), Vec<MapConduitId>>,
    published: &[PublishedMap],
    cfg: &PipelineConfig,
) {
    // Serial per-ISP snap phase: node creation must follow arrival order.
    let mut arrival = 0usize;
    let mut pending: Vec<((String, String), PendingGeocoded)> = Vec::new();
    for pm in published.iter().filter(|m| m.kind == MapKind::Geocoded) {
        for link in &pm.links {
            // Sanitization guarantees geometry on geocoded links; a link
            // that slipped through anyway is unplaceable, not fatal.
            let Some(geometry) = link.geometry.clone() else {
                continue;
            };
            let na = map.ensure_node(&link.a, geometry.start());
            let nb = map.ensure_node(&link.b, geometry.end());
            pending.push((
                pair_key(&link.a, &link.b),
                PendingGeocoded {
                    arrival,
                    isp: pm.isp.clone(),
                    na,
                    nb,
                    geometry,
                },
            ));
            arrival += 1;
        }
    }
    let groups = group_by_pair(pending);

    // Parallel clustering, one pair group per task.
    let clustered: Vec<Vec<LocalConduit>> =
        intertubes_parallel::par_map(&groups, |(_key, links)| {
            let mut local: Vec<LocalConduit> = Vec::new();
            for link in links {
                let mut joined = false;
                for c in local.iter_mut() {
                    if same_conduit(&c.geometry, &link.geometry, cfg.cluster_km) {
                        if !c.tenants.iter().any(|t| *t == link.isp) {
                            c.tenants.push(link.isp.clone());
                        }
                        joined = true;
                        break;
                    }
                }
                if !joined {
                    local.push(LocalConduit {
                        created: link.arrival,
                        a: link.na,
                        b: link.nb,
                        geometry: link.geometry.clone(),
                        tenants: vec![link.isp.clone()],
                    });
                }
            }
            local
        });

    // Merge barrier: global conduit ids follow creating-link arrival order.
    let mut all: Vec<((String, String), LocalConduit)> = groups
        .iter()
        .zip(clustered)
        .flat_map(|((key, _), local)| local.into_iter().map(|c| (key.clone(), c)))
        .collect();
    all.sort_by_key(|(_, c)| c.created);
    for (key, local) in all {
        let id = MapConduitId(map.conduits.len() as u32);
        map.conduits.push(MapConduit {
            a: local.a,
            b: local.b,
            geometry: local.geometry,
            tenants: sorted_tenancies(&local.tenants, TenancySource::PublishedMap),
            provenance: Provenance::Step1,
            validated: false,
            row: None,
        });
        pair_index.entry(key).or_default().push(id);
    }
}

/// Steps 2/4: records validation + tenant inference over `eligible`
/// conduits. `known_isps` bounds who may be added (the 20 mapped providers;
/// traceroute-only carriers enter the analysis later, in §4.3 fashion).
fn records_pass(
    map: &mut FiberMap,
    pair_index: &HashMap<(String, String), Vec<MapConduitId>>,
    corpus: &Corpus,
    known_isps: &[String],
    cfg: &PipelineConfig,
    eligible: impl Fn(&MapConduit) -> bool + Sync,
) {
    // Pairs are independent: each mutates only its own conduits. Corpus
    // evidence gathering — the hot part — fans out per pair; the apply
    // phase below runs serially. Pair order is canonicalized by key so the
    // pass is reproducible regardless of hash-map iteration order (the
    // per-pair updates commute anyway, as pairs touch disjoint conduits).
    let mut pairs: Vec<(&(String, String), &Vec<MapConduitId>)> = pair_index.iter().collect();
    pairs.sort_by_key(|(key, _)| *key);

    let evidence: Vec<Option<_>> = intertubes_parallel::par_map(&pairs, |(_, ids)| {
        let first = ids.first()?;
        if !ids.iter().any(|id| eligible(&map.conduits[id.index()])) {
            return None;
        }
        let c = &map.conduits[first.index()];
        let (a, b) = (
            map.nodes[c.a.index()].label.as_str(),
            map.nodes[c.b.index()].label.as_str(),
        );
        let ev = gather_pair_evidence(corpus, a, b);
        if !ev.is_validated() {
            return None;
        }
        let confident: Vec<String> = ev
            .confident_providers(cfg.confidence)
            .into_iter()
            .map(|isp| isp.to_string())
            .collect();
        Some((ev.dominant_row(), confident))
    });

    for ((_, ids), ev) in pairs.into_iter().zip(evidence) {
        let Some((row, confident)) = ev else { continue };
        for id in ids {
            let c = &mut map.conduits[id.index()];
            if eligible(c) {
                c.validated = true;
                if c.row.is_none() {
                    c.row = row;
                }
            }
        }
        // Infer additional tenants: attach to the pair's busiest conduit.
        for isp in &confident {
            if !known_isps.iter().any(|k| k == isp) {
                continue;
            }
            if ids
                .iter()
                .any(|id| map.conduits[id.index()].has_tenant(isp))
            {
                continue;
            }
            let Some(busiest) = ids
                .iter()
                .max_by_key(|id| map.conduits[id.index()].tenant_count())
            else {
                continue;
            };
            let c = &mut map.conduits[busiest.index()];
            c.tenants.push(Tenancy {
                isp: isp.to_string(),
                source: TenancySource::Records,
            });
            c.tenants.sort_by(|x, y| x.isp.cmp(&y.isp));
        }
    }
}

/// A POP-only link awaiting placement in step 3.
struct PendingPop {
    arrival: usize,
    isp: String,
    a_label: String,
    b_label: String,
    na: MapNodeId,
    nb: MapNodeId,
    la: GeoPoint,
    lb: GeoPoint,
}

/// What a step-3 pair group decided: tenants to lease into existing
/// conduits, plus brand-new conduits (with their creating-link arrival
/// index, for global id assignment).
struct PopGroupOutcome {
    /// `(existing conduit, isp)` leases, in decision order.
    leases: Vec<(MapConduitId, String)>,
    new_conduits: Vec<LocalConduit>,
}

/// Step 3: add POP-only maps, joining existing conduits where possible and
/// snapping new links onto the closest known right-of-way.
///
/// A POP-only link only ever touches its own city pair's conduits (leasing
/// into the busiest, or creating a sibling), so after the serial per-ISP
/// node-resolution prepass, placement fans out one pair group per task.
/// Each group simulates the serial decision sequence over a snapshot of
/// its pair's tenant counts; the merge barrier applies leases and appends
/// new conduits in arrival order, reproducing serial ids exactly.
fn step3(
    map: &mut FiberMap,
    pair_index: &mut HashMap<(String, String), Vec<MapConduitId>>,
    published: &[PublishedMap],
    gaz: &Gazetteer<'_>,
    roads: &CorridorLookup,
    rails: &CorridorLookup,
) {
    // Serial per-ISP snap phase: node creation follows arrival order.
    let mut arrival = map.conduits.len(); // any monotone base works
    let mut pending: Vec<((String, String), PendingPop)> = Vec::new();
    for pm in published.iter().filter(|m| m.kind == MapKind::PopOnly) {
        for link in &pm.links {
            let (Some(la), Some(lb)) = (gaz.location(&link.a), gaz.location(&link.b)) else {
                continue; // endpoint not in the gazetteer: cannot place
            };
            let na = map.ensure_node(&link.a, la);
            let nb = map.ensure_node(&link.b, lb);
            pending.push((
                pair_key(&link.a, &link.b),
                PendingPop {
                    arrival,
                    isp: pm.isp.clone(),
                    a_label: link.a.clone(),
                    b_label: link.b.clone(),
                    na,
                    nb,
                    la,
                    lb,
                },
            ));
            arrival += 1;
        }
    }
    let groups = group_by_pair(pending);

    // Parallel placement, one pair group per task, over a read-only map.
    let outcomes: Vec<PopGroupOutcome> = intertubes_parallel::par_map(&groups, |(key, links)| {
        // Snapshot of the pair's conduits: (id or locally-created index,
        // tenant names, tenant count), evolved as the simulation leases.
        enum Slot {
            Existing(MapConduitId),
            New(usize),
        }
        let mut slots: Vec<(Slot, Vec<String>)> = pair_index
            .get(key)
            .map(|ids| {
                ids.iter()
                    .map(|id| {
                        let c = &map.conduits[id.index()];
                        (
                            Slot::Existing(*id),
                            c.tenants.iter().map(|t| t.isp.clone()).collect(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut out = PopGroupOutcome {
            leases: Vec::new(),
            new_conduits: Vec::new(),
        };
        for link in links {
            // Tentatively place the provider in the pair's busiest conduit
            // (lease into existing infrastructure) when the pair is known.
            let busiest = slots
                .iter_mut()
                .max_by_key(|(_, tenants)| tenants.len());
            if let Some((slot, tenants)) = busiest {
                if !tenants.iter().any(|t| *t == link.isp) {
                    tenants.push(link.isp.clone());
                    match slot {
                        Slot::Existing(id) => out.leases.push((*id, link.isp.clone())),
                        Slot::New(i) => out.new_conduits[*i].tenants.push(link.isp.clone()),
                    }
                }
                continue;
            }
            // New conduit: snap onto the closest known ROW (road, then
            // rail), falling back to a direct path.
            let geometry = roads
                .get(&link.a_label, &link.b_label)
                .or_else(|| rails.get(&link.a_label, &link.b_label))
                .cloned()
                .unwrap_or_else(|| Polyline::straight(link.la, link.lb));
            let i = out.new_conduits.len();
            out.new_conduits.push(LocalConduit {
                created: link.arrival,
                a: link.na,
                b: link.nb,
                geometry,
                tenants: vec![link.isp.clone()],
            });
            slots.push((Slot::New(i), vec![link.isp.clone()]));
        }
        out
    });

    // Merge barrier: apply leases, then append new conduits in arrival
    // order so ids match the serial formulation.
    let mut new_conduits: Vec<((String, String), LocalConduit)> = Vec::new();
    for ((key, _), outcome) in groups.iter().zip(outcomes) {
        for (id, isp) in outcome.leases {
            let c = &mut map.conduits[id.index()];
            if !c.has_tenant(&isp) {
                c.tenants.push(Tenancy {
                    isp,
                    source: TenancySource::PublishedMap,
                });
                c.tenants.sort_by(|x, y| x.isp.cmp(&y.isp));
            }
        }
        for local in outcome.new_conduits {
            new_conduits.push((key.clone(), local));
        }
    }
    new_conduits.sort_by_key(|(_, c)| c.created);
    for (key, local) in new_conduits {
        let id = MapConduitId(map.conduits.len() as u32);
        map.conduits.push(MapConduit {
            a: local.a,
            b: local.b,
            geometry: local.geometry,
            tenants: sorted_tenancies(&local.tenants, TenancySource::PublishedMap),
            provenance: Provenance::Step3,
            validated: false,
            row: None,
        });
        pair_index.entry(key).or_default().push(id);
    }
}

/// Whether every coordinate of `p` is finite and within geographic range.
fn polyline_is_valid(p: &Polyline) -> bool {
    p.points()
        .iter()
        .all(|pt| pt.lat.is_finite() && pt.lon.is_finite() && pt.lat.abs() <= 90.0 && pt.lon.abs() <= 180.0)
}

/// Input sanitization: the degradation front door of the pipeline.
///
/// Runs before step 1 and returns a cleaned copy of the published maps:
///
/// * Geometry with non-finite or out-of-range coordinates — lenient drops
///   the link (`"invalid-geometry"`); strict fails.
/// * Geocoded links without geometry — repaired as a straight line between
///   the gazetteer locations of the endpoints (`"missing-geometry"`), or
///   dropped when an endpoint is unknown
///   (`"missing-geometry-unresolvable"`); strict fails either way.
/// * Bitwise-identical duplicate links within one provider's map —
///   digitization noise makes natural collisions impossible, so these are
///   publication artifacts: deduplicated (`"duplicate-link"`); strict
///   fails. POP-only duplicates are *kept* — carriers legitimately list a
///   city pair once per conduit they lease.
/// * POP-only links naming a city absent from the gazetteer — dropped
///   (`"unknown-endpoint"`); strict fails.
///
/// On clean input the returned maps equal the input and no events are
/// noted.
fn sanitize_published(
    published: &[PublishedMap],
    gaz: &Gazetteer<'_>,
    policy: DegradationPolicy,
    report: &mut DegradationReport,
) -> Result<Vec<PublishedMap>, MapError> {
    const STAGE: &str = "map.sanitize";
    // Each published map sanitizes independently: fan out one map per task.
    // Within a map, links are checked serially in published order, so the
    // first error a map reports is the same one the serial loop would hit;
    // the merge keeps the first failing map in input order, which makes the
    // strict-mode error identical to the serial formulation.
    let results: Vec<Result<(PublishedMap, [usize; 5]), MapError>> =
        intertubes_parallel::par_map(published, |pm| sanitize_one(pm, gaz, policy));
    let mut out = Vec::with_capacity(published.len());
    let mut counts = [0usize; 5];
    for result in results {
        let (pm, map_counts) = result?;
        for (total, c) in counts.iter_mut().zip(map_counts) {
            *total += c;
        }
        out.push(pm);
    }
    let [invalid, repaired, unresolvable, duplicates, unknown] = counts;
    report.note(STAGE, DegradationAction::Dropped, "invalid-geometry", invalid);
    report.note(STAGE, DegradationAction::Repaired, "missing-geometry", repaired);
    report.note(
        STAGE,
        DegradationAction::Dropped,
        "missing-geometry-unresolvable",
        unresolvable,
    );
    report.note(STAGE, DegradationAction::Repaired, "duplicate-link", duplicates);
    report.note(STAGE, DegradationAction::Dropped, "unknown-endpoint", unknown);
    Ok(out)
}

/// Sanitizes a single published map, returning the cleaned map plus its
/// `[invalid, repaired, unresolvable, duplicates, unknown]` counts.
fn sanitize_one(
    pm: &PublishedMap,
    gaz: &Gazetteer<'_>,
    policy: DegradationPolicy,
) -> Result<(PublishedMap, [usize; 5]), MapError> {
    let mut invalid = 0usize;
    let mut repaired = 0usize;
    let mut unresolvable = 0usize;
    let mut duplicates = 0usize;
    let mut unknown = 0usize;
    {
        let mut links: Vec<PublishedLink> = Vec::with_capacity(pm.links.len());
        for link in &pm.links {
            match (pm.kind, &link.geometry) {
                (_, Some(geom)) if !polyline_is_valid(geom) => {
                    if policy.is_strict() {
                        return Err(MapError::InvalidGeometry {
                            isp: pm.isp.clone(),
                            a: link.a.clone(),
                            b: link.b.clone(),
                        });
                    }
                    invalid += 1;
                }
                (MapKind::Geocoded, None) => {
                    if policy.is_strict() {
                        return Err(MapError::MissingGeometry {
                            isp: pm.isp.clone(),
                            a: link.a.clone(),
                            b: link.b.clone(),
                        });
                    }
                    match (gaz.location(&link.a), gaz.location(&link.b)) {
                        (Some(la), Some(lb)) => {
                            repaired += 1;
                            links.push(PublishedLink {
                                a: link.a.clone(),
                                b: link.b.clone(),
                                geometry: Some(Polyline::straight(la, lb)),
                            });
                        }
                        _ => unresolvable += 1,
                    }
                }
                (MapKind::Geocoded, Some(_)) if links.contains(link) => {
                    if policy.is_strict() {
                        return Err(MapError::DuplicateLink {
                            isp: pm.isp.clone(),
                            a: link.a.clone(),
                            b: link.b.clone(),
                        });
                    }
                    duplicates += 1;
                }
                (MapKind::PopOnly, _) if gaz.location(&link.a).is_none() || gaz.location(&link.b).is_none() => {
                    if policy.is_strict() {
                        let label = if gaz.location(&link.a).is_none() {
                            link.a.clone()
                        } else {
                            link.b.clone()
                        };
                        return Err(MapError::UnknownEndpoint {
                            isp: pm.isp.clone(),
                            label,
                        });
                    }
                    unknown += 1;
                }
                _ => links.push(link.clone()),
            }
        }
        Ok((
            PublishedMap {
                isp: pm.isp.clone(),
                kind: pm.kind,
                links,
            },
            [invalid, repaired, unresolvable, duplicates, unknown],
        ))
    }
}

/// Runs the full four-step pipeline with explicit degradation control.
///
/// Inputs are sanitized first (see the module docs); under
/// [`DegradationPolicy::Lenient`] problems are absorbed and counted in the
/// returned [`DegradationReport`], under
/// [`DegradationPolicy::Strict`] the first problem aborts with a
/// [`MapError`]. Clean input produces a map identical to [`build_map`]'s
/// and an empty report.
pub fn build_map_checked(
    published: &[PublishedMap],
    corpus: &Corpus,
    cities: &[City],
    roads: &TransportNetwork,
    rails: &TransportNetwork,
    cfg: &PipelineConfig,
    policy: DegradationPolicy,
) -> Result<(BuiltMap, DegradationReport), MapError> {
    let gaz = Gazetteer::new(cities);
    let road_lookup = CorridorLookup::new(roads, cities);
    let rail_lookup = CorridorLookup::new(rails, cities);
    let known_isps: Vec<String> = published.iter().map(|m| m.isp.clone()).collect();

    // Copies a step report's headline counts onto the step's stage span so
    // the run manifest carries the same totals as `BuiltMap::reports`.
    fn step_items(span: &mut intertubes_obs::StageGuard, r: &StepReport) {
        span.items("nodes", r.nodes);
        span.items("links", r.links);
        span.items("conduits", r.conduits);
        span.items("validated_conduits", r.validated_conduits);
    }

    let mut degradation = DegradationReport::new();
    let published = {
        let mut span = intertubes_obs::stage("map.sanitize");
        span.items("maps_in", published.len());
        match sanitize_published(published, &gaz, policy, &mut degradation) {
            Ok(clean) => {
                span.items("maps_out", clean.len());
                if !degradation.is_clean() {
                    span.degraded();
                }
                clean
            }
            Err(e) => {
                span.failed();
                return Err(e);
            }
        }
    };

    let mut map = FiberMap::default();
    let mut pair_index: HashMap<(String, String), Vec<MapConduitId>> = HashMap::new();
    let mut reports = Vec::with_capacity(4);

    {
        let mut span = intertubes_obs::stage("map.step1");
        step1(&mut map, &mut pair_index, &published, cfg);
        let r = report(1, &map);
        step_items(&mut span, &r);
        reports.push(r);
    }

    {
        let mut span = intertubes_obs::stage("map.step2");
        records_pass(&mut map, &pair_index, corpus, &known_isps, cfg, |c| {
            c.provenance == Provenance::Step1
        });
        let r = report(2, &map);
        step_items(&mut span, &r);
        reports.push(r);
    }

    {
        let mut span = intertubes_obs::stage("map.step3");
        step3(
            &mut map,
            &mut pair_index,
            &published,
            &gaz,
            &road_lookup,
            &rail_lookup,
        );
        let r = report(3, &map);
        step_items(&mut span, &r);
        reports.push(r);
    }

    {
        let mut span = intertubes_obs::stage("map.step4");
        records_pass(&mut map, &pair_index, corpus, &known_isps, cfg, |_| true);

        // Apply the §2 long-haul definition: a conduit stays if it spans
        // ≥ 30 miles, or joins ≥ 100 k-population centers, or is shared by ≥ 2
        // providers (the definition is disjunctive).
        let dropped = apply_long_haul_policy(&mut map, cities, &cfg.policy);
        let mut final_report = report(4, &map);
        // Dropped metro-scale conduits are reported implicitly via the totals.
        let _ = dropped;
        final_report.step = 4;
        step_items(&mut span, &final_report);
        reports.push(final_report);
    }

    Ok((BuiltMap { map, reports }, degradation))
}

/// Runs the full four-step pipeline.
///
/// * `published` — the providers' maps (geocoded and POP-only).
/// * `corpus` — the public-records corpus.
/// * `cities` — the public gazetteer (city label → location).
/// * `roads` / `rails` — public transportation layers for ROW snapping.
///
/// Equivalent to [`build_map_checked`] under the lenient policy, with the
/// degradation report discarded.
pub fn build_map(
    published: &[PublishedMap],
    corpus: &Corpus,
    cities: &[City],
    roads: &TransportNetwork,
    rails: &TransportNetwork,
    cfg: &PipelineConfig,
) -> BuiltMap {
    match build_map_checked(
        published,
        corpus,
        cities,
        roads,
        rails,
        cfg,
        DegradationPolicy::Lenient,
    ) {
        Ok((built, _)) => built,
        // The lenient policy never returns an error by construction.
        Err(e) => unreachable!("lenient build cannot fail: {e}"),
    }
}

/// Drops conduits failing every criterion of the long-haul definition.
/// Returns how many were removed.
fn apply_long_haul_policy(
    map: &mut FiberMap,
    cities: &[City],
    policy: &crate::model::LongHaulPolicy,
) -> usize {
    let pop = |label: &str| -> u32 {
        cities
            .iter()
            .find(|c| c.label() == label)
            .map(|c| c.population)
            .unwrap_or(0)
    };
    let before = map.conduits.len();
    let nodes = map.nodes.clone();
    map.conduits.retain(|c| {
        let span_km = c.geometry.length_km();
        let pa = pop(&nodes[c.a.index()].label);
        let pb = pop(&nodes[c.b.index()].label);
        policy.qualifies(span_km, pa, pb, c.tenant_count())
    });
    before - map.conduits.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_atlas::World;
    use intertubes_records::{generate_corpus, CorpusConfig};

    fn build() -> (World, BuiltMap) {
        let w = World::reference();
        let corpus = generate_corpus(&w, &CorpusConfig::default());
        let published = w.publish_maps();
        let built = build_map(
            &published,
            &corpus,
            &w.cities,
            &w.roads,
            &w.rails,
            &PipelineConfig::default(),
        );
        (w, built)
    }

    #[test]
    fn four_reports_with_monotone_totals() {
        let (_, built) = build();
        assert_eq!(built.reports.len(), 4);
        for wpair in built.reports.windows(2) {
            assert!(wpair[1].nodes >= wpair[0].nodes);
            assert!(wpair[1].links >= wpair[0].links);
            assert!(wpair[1].conduits >= wpair[0].conduits);
        }
    }

    #[test]
    fn step1_scale_matches_paper() {
        let (_, built) = build();
        let r1 = built.reports[0];
        // Paper step 1: 267 nodes, 1258 links, 512 conduits. Our world has
        // ~200 cities, so nodes land lower; links are calibrated.
        assert!(
            r1.links >= 1100 && r1.links <= 1400,
            "step-1 links {}",
            r1.links
        );
        assert!(
            r1.conduits >= 350 && r1.conduits <= 560,
            "step-1 conduits {}",
            r1.conduits
        );
        assert!(r1.nodes >= 150, "step-1 nodes {}", r1.nodes);
    }

    #[test]
    fn step2_validates_most_conduits() {
        let (_, built) = build();
        let r2 = built.reports[1];
        let frac = r2.validated_conduits as f64 / r2.conduits as f64;
        assert!(frac > 0.8, "validated fraction {frac}");
        // Step 2 may add record-inferred tenants but no conduits/nodes.
        assert_eq!(r2.conduits, built.reports[0].conduits);
        assert_eq!(r2.nodes, built.reports[0].nodes);
        assert!(r2.links >= built.reports[0].links);
    }

    #[test]
    fn step3_adds_modest_new_conduits() {
        let (_, built) = build();
        let r2 = built.reports[1];
        let r3 = built.reports[2];
        let new_conduits = r3.conduits - r2.conduits;
        // Paper: step 3 added only 30 new conduits — POP-only providers
        // overwhelmingly lease into existing trenches.
        assert!(new_conduits < 120, "step 3 added {new_conduits} conduits");
        assert!(r3.links > r2.links, "step 3 must add tenancies");
    }

    #[test]
    fn final_map_scale_matches_paper() {
        let (_, built) = build();
        let r4 = built.reports[3];
        // Paper: 273 nodes, 2411 links, 542 conduits.
        assert!(
            r4.conduits >= 350 && r4.conduits <= 600,
            "conduits {}",
            r4.conduits
        );
        assert!(r4.links >= 1900 && r4.links <= 2800, "links {}", r4.links);
    }

    #[test]
    fn tenancy_reconstruction_quality() {
        let (w, built) = build();
        // Precision/recall of (isp, city-pair) tenancies vs ground truth.
        use std::collections::HashSet;
        let mut truth: HashSet<(String, String, String)> = HashSet::new();
        for (i, fp) in w.mapped_footprints().iter().enumerate() {
            let isp = w.roster[i].name.clone();
            for c in &fp.conduits {
                let cd = w.system.conduit(*c);
                let (a, b) = (w.city_label(cd.a), w.city_label(cd.b));
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                truth.insert((isp.clone(), a, b));
            }
        }
        let mut found: HashSet<(String, String, String)> = HashSet::new();
        for c in &built.map.conduits {
            let (a, b) = (
                built.map.nodes[c.a.index()].label.clone(),
                built.map.nodes[c.b.index()].label.clone(),
            );
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            for t in &c.tenants {
                found.insert((t.isp.clone(), a.clone(), b.clone()));
            }
        }
        let tp = found.intersection(&truth).count() as f64;
        let precision = tp / found.len() as f64;
        let recall = tp / truth.len() as f64;
        println!("tenancy reconstruction: precision {precision:.3}, recall {recall:.3}");
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.75, "recall {recall}");
    }

    #[test]
    fn deterministic() {
        let (_, a) = build();
        let (_, b) = build();
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.map.link_count(), b.map.link_count());
    }
}
