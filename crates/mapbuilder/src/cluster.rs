//! Geometry clustering: deciding whether two published link geometries
//! describe the *same* physical conduit.
//!
//! Two providers publishing maps of the same trench digitize it slightly
//! differently; a genuinely parallel second trench runs kilometers away.
//! The separation statistic below (mean distance between aligned samples)
//! separates the two regimes.

use intertubes_geo::Polyline;

/// Sample fractions used for the separation statistic.
const FRACTIONS: [f64; 5] = [0.2, 0.35, 0.5, 0.65, 0.8];

/// Mean separation in km between two polylines that nominally join the same
/// endpoints. Orientation is normalized first (published maps draw links in
/// arbitrary direction).
pub fn geometry_separation_km(g1: &Polyline, g2: &Polyline) -> f64 {
    // Align orientation: if g2 runs the other way, mirror its fractions.
    let fwd = g1.start().distance_km(&g2.start()) + g1.end().distance_km(&g2.end());
    let rev = g1.start().distance_km(&g2.end()) + g1.end().distance_km(&g2.start());
    let flip = rev < fwd;
    let mut total = 0.0;
    for t in FRACTIONS {
        let p1 = g1.point_at_fraction(t);
        let t2 = if flip { 1.0 - t } else { t };
        let p2 = g2.point_at_fraction(t2);
        total += p1.distance_km(&p2);
    }
    total / FRACTIONS.len() as f64
}

/// Whether two geometries describe the same conduit under `threshold_km`.
pub fn same_conduit(g1: &Polyline, g2: &Polyline, threshold_km: f64) -> bool {
    geometry_separation_km(g1, g2) <= threshold_km
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::GeoPoint;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    fn base() -> Polyline {
        Polyline::new(vec![p(40.0, -105.0), p(40.1, -103.0), p(40.0, -101.0)]).unwrap()
    }

    #[test]
    fn identical_geometries_have_zero_separation() {
        let g = base();
        assert!(geometry_separation_km(&g, &g) < 1e-9);
        assert!(same_conduit(&g, &g, 1.0));
    }

    #[test]
    fn reversed_geometry_still_matches() {
        let g = base();
        let mut r = g.clone();
        r.reverse();
        assert!(geometry_separation_km(&g, &r) < 1e-6);
    }

    #[test]
    fn small_noise_matches_parallel_does_not() {
        let g = base().densify(40.0).unwrap();
        // Digitization noise scale (≤ ~1 km).
        let noisy = g.offset_parallel(0.7);
        assert!(
            same_conduit(&g, &noisy, 2.5),
            "noise sep {}",
            geometry_separation_km(&g, &noisy)
        );
        // Parallel-trench scale (≥ 5 km).
        let parallel = g.offset_parallel(6.5);
        assert!(
            !same_conduit(&g, &parallel, 2.5),
            "parallel sep {}",
            geometry_separation_km(&g, &parallel)
        );
    }

    #[test]
    fn different_corridors_are_far() {
        let g1 = Polyline::straight(p(40.0, -105.0), p(40.0, -101.0));
        let g2 = Polyline::new(vec![p(40.0, -105.0), p(41.0, -103.0), p(40.0, -101.0)]).unwrap();
        assert!(geometry_separation_km(&g1, &g2) > 30.0);
    }
}
