//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The real crate is unavailable (no network registry), so this stub
//! provides a compatible surface: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_flat_map`, range and tuple strategies, string
//! generation from a mini regex dialect, `prop::collection::vec`,
//! `prop::sample::select`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for this environment:
//!
//! * **Deterministic**: the case seed derives from the test name, so runs
//!   are reproducible and `proptest-regressions` files are ignored.
//! * **No shrinking**: a failing case reports its seed and values via
//!   `Debug`-free messages instead of minimizing.
//! * Fixed case count (64 by default, `PROPTEST_CASES` overrides).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Deterministic generator feeding strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Failure modes a property-test case can report.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected (e.g. by `prop_assume!`); the runner
    /// draws a fresh case without counting this one.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for failures.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Convenience constructor for rejections.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or `None` to reject the attempt (the runner
    /// retries with fresh randomness).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Discards generated values failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: impl Into<String>,
        f: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
        self,
        f: F,
    ) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Retry locally a few times before escalating the rejection.
        for _ in 0..16 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start >= self.end {
                    return None;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if !(self.start < self.end) {
                    return None;
                }
                let u = rng.unit_f64() as $t;
                Some(self.start + u * (self.end - self.start))
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        Some((self.0.generate(rng)?, self.1.generate(rng)?))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        Some((
            self.0.generate(rng)?,
            self.1.generate(rng)?,
            self.2.generate(rng)?,
        ))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        Some((
            self.0.generate(rng)?,
            self.1.generate(rng)?,
            self.2.generate(rng)?,
            self.3.generate(rng)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// String strategies (mini regex dialect)
// ---------------------------------------------------------------------------

/// One repeated character-class unit of a pattern.
struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// `&'static str` is interpreted as a restricted regex: `.` (printable
/// chars), `[a-z 0-9,]` classes with ranges, literal characters, and the
/// quantifiers `{m,n}`, `{m,}`, `{m}`, `*`, `+`, `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            if part.chars.is_empty() {
                continue;
            }
            let span = part.max - part.min + 1;
            let n = part.min + rng.below(span as u64) as usize;
            for _ in 0..n {
                out.push(part.chars[rng.below(part.chars.len() as u64) as usize]);
            }
        }
        Some(out)
    }
}

/// The pool for `.`: printable ASCII plus a few multi-byte characters so
/// unicode handling gets exercised.
fn any_char_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    pool.extend(['é', 'Ü', 'ß', 'λ', '中', '😀']);
    pool
}

fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                any_char_pool()
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                    's' => vec![' ', '\t'],
                    other => vec![other],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            match close {
                Some(close) => {
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    parse_quantifier(&body)
                }
                None => (1, 1),
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        parts.push(PatternPart {
            chars: set,
            min,
            max: max.max(min),
        });
    }
    parts
}

fn parse_quantifier(body: &str) -> (usize, usize) {
    match body.split_once(',') {
        None => {
            let n = body.trim().parse().unwrap_or(1);
            (n, n)
        }
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(0);
            let hi = hi.trim().parse().unwrap_or(lo + 8);
            (lo, hi)
        }
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

/// Namespaced strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use core::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                if self.size.start >= self.size.end {
                    return None;
                }
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span) as usize;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(self.element.generate(rng)?);
                }
                Some(out)
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Chooses one of `items` uniformly (clones it).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> Option<T> {
                if self.items.is_empty() {
                    return None;
                }
                Some(self.items[rng.below(self.items.len() as u64) as usize].clone())
            }
        }
    }
}

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`
/// overrides the default of 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Stable 64-bit hash of a test name, used to give every test its own
/// deterministic stream.
pub fn seed_for_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines property tests. Each function body runs for many generated
/// cases; bindings are declared as `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            // The user-side idiom (matching real proptest) writes `#[test]`
            // inside the macro block, so it arrives via `$meta` — emitting
            // another one here would register every test twice.
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::case_count();
                let mut __seed = $crate::seed_for_name(stringify!($name));
                let mut __done: u64 = 0;
                let mut __rejects: u64 = 0;
                while __done < __cases {
                    __seed = __seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    let __vals = (
                        $(
                            match $crate::Strategy::generate(&($strat), &mut __rng) {
                                ::std::option::Option::Some(v) => v,
                                ::std::option::Option::None => {
                                    __rejects += 1;
                                    if __rejects > 4096 {
                                        panic!(
                                            "proptest stub: too many rejected cases in {}",
                                            stringify!($name)
                                        );
                                    }
                                    continue;
                                }
                            }
                        ),+ ,
                    );
                    let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        let ( $($pat),+ , ) = __vals;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {
                            __done += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejects += 1;
                            if __rejects > 4096 {
                                panic!(
                                    "proptest stub: too many rejected cases in {}",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed (seed {:#x}, case {} of {}): {}",
                                __seed, __done, __cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..50 {
            let s = ".{0,120}".generate(&mut rng).unwrap();
            assert!(s.chars().count() <= 120);
            let t = "[a-z ,]{2,40}".generate(&mut rng).unwrap();
            let n = t.chars().count();
            assert!((2..=40).contains(&n), "{t:?}");
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == ','));
        }
    }

    proptest! {
        fn ranges_in_bounds(a in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        fn vec_and_select(v in prop::collection::vec(0u32..5, 1..9), pick in prop::sample::select(vec!["x", "y"])) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(pick == "x" || pick == "y");
        }

        fn tuples_and_maps((a, b) in (0u32..4, 0u32..4).prop_map(|(x, y)| (x + 10, y + 20))) {
            prop_assert!((10..14).contains(&a));
            prop_assert_eq!(b / 10, 2, "b was {}", b);
        }

        fn flat_map_and_filter(len in (2usize..6).prop_flat_map(|n| prop::collection::vec(0u32..100, n..n + 1)).prop_filter("nonempty", |v| !v.is_empty())) {
            prop_assert!((2..6).contains(&len.len()));
        }

        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }
}
