//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, deterministic replacement: `StdRng` here is a SplitMix64
//! generator rather than ChaCha, which is statistically more than adequate
//! for the synthetic-world sampling done in this repository and keeps the
//! implementation dependency-free. The API mirrors `rand` closely enough
//! that swapping the real crate back in is a one-line change in the
//! workspace manifest.
//!
//! Covered surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges
//! (half-open and inclusive), and `Distribution`/`Standard` for `gen()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can produce values of type `T` from raw bits.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over `[0, 1)` for floats,
/// uniform over all values for unsigned integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Converts 64 random bits into a double in `[0, 1)` with 53 bits of
/// precision (the standard `rand` construction).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range (or inclusive range) that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range {}..{}",
                    self.start,
                    self.end
                );
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range {lo}..={hi}");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`. Blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (e.g. a `f64`
    /// uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            unit_f64(self.next_u64()) < p
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). See the crate docs for
    /// why this stands in for `rand`'s ChaCha-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
