//! Non-blocking TCP shim over `std::net`.
//!
//! The real serving deployments would sit behind an event-loop crate
//! (mio, polling, tokio); this workspace builds offline, so this stub
//! reimplements exactly the subset the `intertubes-net` front-end needs:
//! a non-blocking listener whose `accept` never parks the thread, a
//! non-blocking stream with explicit partial-read/partial-write results,
//! and a cooperative `tick` pause for the poll loop. Everything is plain
//! `std::net` underneath — no platform syscalls beyond what std exposes —
//! so the shim is portable wherever std is.
//!
//! Swapping in a real reactor later is a matter of re-implementing these
//! four types on top of it; the serving loop only sees `Option`-shaped
//! readiness, never `WouldBlock` errors.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long [`tick`] parks the poll loop when nothing was ready. Half a
/// millisecond keeps idle CPU negligible while adding at most ~1 ms of
/// latency to a quiet connection.
pub const TICK: Duration = Duration::from_micros(500);

/// Parks the caller for one poll-loop tick. The loop calls this only
/// after a full pass with no readable bytes, writable progress, or
/// pending accepts — a busy server never sleeps.
pub fn tick() {
    std::thread::sleep(TICK);
}

/// What one non-blocking read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n > 0` bytes were read into the buffer.
    Data(usize),
    /// The peer closed its write half (EOF).
    Closed,
    /// Nothing available right now (`WouldBlock`).
    Pending,
}

/// A non-blocking TCP listener.
#[derive(Debug)]
pub struct NbListener {
    inner: TcpListener,
    addr: SocketAddr,
}

impl NbListener {
    /// Binds and switches to non-blocking mode. Binding port 0 picks an
    /// ephemeral port; [`NbListener::local_addr`] reports the real one.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<NbListener> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let addr = inner.local_addr()?;
        Ok(NbListener { inner, addr })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts one pending connection, or `None` when the backlog is
    /// empty. The returned stream is already non-blocking.
    pub fn accept(&self) -> io::Result<Option<(NbStream, SocketAddr)>> {
        match self.inner.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                Ok(Some((NbStream { inner: stream }, peer)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A non-blocking TCP stream: reads report readiness explicitly, writes
/// report how much was taken.
#[derive(Debug)]
pub struct NbStream {
    inner: TcpStream,
}

impl NbStream {
    /// Connects (blocking — connection setup happens once) and switches
    /// the established stream to non-blocking mode.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NbStream> {
        let inner = TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(NbStream { inner })
    }

    /// Reads whatever is available into `buf` without blocking.
    pub fn read_some(&mut self, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        match self.inner.read(buf) {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => Ok(ReadOutcome::Data(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(ReadOutcome::Pending),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadOutcome::Pending),
            // A peer that vanished mid-stream (reset) reads as a close:
            // the framing layer reports the truncation, not the errno.
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(ReadOutcome::Closed),
            Err(e) => Err(e),
        }
    }

    /// Writes as much of `buf` as the socket takes right now, returning
    /// the count (0 when the send buffer is full).
    pub fn write_some(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.inner.write(buf) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Shuts down both halves, telling the peer we are done. Errors are
    /// ignored — the peer may already be gone, which is the same outcome.
    pub fn shutdown(&self) {
        let _ = self.inner.shutdown(std::net::Shutdown::Both);
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_is_nonblocking_and_round_trips_bytes() {
        let listener = NbListener::bind("127.0.0.1:0").unwrap();
        // Nothing pending yet: accept returns immediately with None.
        assert!(listener.accept().unwrap().is_none());

        let mut client = NbStream::connect(listener.local_addr()).unwrap();
        // The connection lands in the backlog within a few ticks.
        let mut server = loop {
            if let Some((conn, _)) = listener.accept().unwrap() {
                break conn;
            }
            tick();
        };

        assert_eq!(client.write_some(b"ping").unwrap(), 4);
        let mut buf = [0u8; 16];
        let got = loop {
            match server.read_some(&mut buf).unwrap() {
                ReadOutcome::Data(n) => break n,
                ReadOutcome::Pending => tick(),
                ReadOutcome::Closed => panic!("client still open"),
            }
        };
        assert_eq!(&buf[..got], b"ping");

        // Close surfaces as Closed, not an error.
        client.shutdown();
        loop {
            match server.read_some(&mut buf).unwrap() {
                ReadOutcome::Closed => break,
                ReadOutcome::Pending => tick(),
                ReadOutcome::Data(_) => {}
            }
        }
    }
}
