//! Offline stand-in for the subset of `tracing` this workspace uses.
//!
//! The real crate is unavailable (no network registry), so this stub
//! provides a compatible surface: severity [`Level`]s with the usual
//! ordering and parsing, typed structured [`FieldValue`]s, a [`Subscriber`]
//! trait receiving span enter/exit notifications and structured events, a
//! process-global dispatch point, RAII [`Span`] guards, and the
//! `error!`/`warn!`/`info!`/`debug!`/`trace!` macros.
//!
//! Differences from real tracing, deliberate for this environment:
//!
//! * **One flat subscriber slot** instead of layered registries; the
//!   subscriber is installed with [`set_subscriber`] and — unlike
//!   `set_global_default` — can be removed again with [`clear_subscriber`],
//!   which is what lets `intertubes-obs` scope a recording session to one
//!   CLI run or test body.
//! * Spans are identified by name (the workspace opens each stage span from
//!   one serial call site), not by generated ids, and carry their
//!   structured fields on exit rather than via `Span::record`.
//! * Macros accept `format!`-style message arguments only; structured
//!   fields travel through [`dispatch_event`].
//!
//! With no subscriber installed every operation is a cheap no-op, so
//! library crates can stay instrumented unconditionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, RwLock};

/// Event/span severity, ordered from most to least severe:
/// `Error < Warn < Info < Debug < Trace` (matching real tracing, where a
/// *lower* level is *more* severe and filters keep `level <= max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The system cannot proceed as asked.
    Error,
    /// Something degraded but the run continues.
    Warn,
    /// Normal operational signposts (the default filter).
    Info,
    /// Diagnostic detail for debugging.
    Debug,
    /// Very fine-grained detail.
    Trace,
}

impl Level {
    /// Stable lower-case label (`"info"`, …) used in logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name, case-insensitively. `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed structured-field value attached to an event or span exit.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field (counts, sizes).
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field (durations, ratios).
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// The sink for spans and events. `intertubes-obs` installs its recorder
/// as the process subscriber; with none installed everything no-ops.
pub trait Subscriber: Send + Sync {
    /// Whether events at `level` should be constructed at all.
    fn enabled(&self, level: Level) -> bool;
    /// A named span was entered on the calling thread.
    fn span_enter(&self, name: &str);
    /// The matching span exited, carrying its structured fields
    /// (the workspace convention includes `wall_ms`, item counts, and an
    /// `outcome` string).
    fn span_exit(&self, name: &str, fields: &[(&str, FieldValue)]);
    /// A structured event was emitted on the calling thread.
    fn event(&self, level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]);
}

/// The process-global subscriber slot.
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Installs `sub` as the process subscriber, returning the previous one.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    slot.replace(sub)
}

/// Removes the process subscriber (if any), returning it.
pub fn clear_subscriber() -> Option<Arc<dyn Subscriber>> {
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    slot.take()
}

/// Whether a subscriber is installed and enabled for `level`.
pub fn enabled(level: Level) -> bool {
    with_subscriber(|s| s.enabled(level)).unwrap_or(false)
}

/// Runs `f` against the installed subscriber, if any.
pub fn with_subscriber<R>(f: impl FnOnce(&dyn Subscriber) -> R) -> Option<R> {
    let slot = SUBSCRIBER.read().unwrap_or_else(|e| e.into_inner());
    slot.as_deref().map(f)
}

/// Dispatches a structured event to the subscriber (no-op without one).
pub fn dispatch_event(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    with_subscriber(|s| {
        if s.enabled(level) {
            s.event(level, target, message, fields);
        }
    });
}

/// An entered named span; exiting happens on drop (or explicitly via
/// [`Span::exit_with`], which attaches structured fields).
#[must_use = "a span is exited when dropped; binding it to `_` exits immediately"]
#[derive(Debug)]
pub struct Span {
    name: String,
    live: bool,
}

impl Span {
    /// Enters a named span on the calling thread.
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        with_subscriber(|s| s.span_enter(&name));
        Span { name, live: true }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Exits the span, attaching structured fields to the exit record.
    pub fn exit_with(mut self, fields: &[(&str, FieldValue)]) {
        self.live = false;
        with_subscriber(|s| s.span_exit(&self.name, fields));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            with_subscriber(|s| s.span_exit(&self.name, &[]));
        }
    }
}

/// Emits a `format!`-style event at an explicit level.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)*) => {{
        let lvl = $lvl;
        if $crate::enabled(lvl) {
            $crate::dispatch_event(lvl, module_path!(), &format!($($arg)*), &[]);
        }
    }};
}

/// Emits an error-level event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Error, $($arg)*) };
}

/// Emits a warn-level event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Warn, $($arg)*) };
}

/// Emits an info-level event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Info, $($arg)*) };
}

/// Emits a debug-level event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Debug, $($arg)*) };
}

/// Emits a trace-level event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the process-global subscriber slot.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Captures everything it is sent (test double).
    #[derive(Default)]
    struct Capture {
        lines: Mutex<Vec<String>>,
    }

    impl Subscriber for Capture {
        fn enabled(&self, level: Level) -> bool {
            level <= Level::Debug
        }
        fn span_enter(&self, name: &str) {
            self.lines
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("enter {name}"));
        }
        fn span_exit(&self, name: &str, fields: &[(&str, FieldValue)]) {
            self.lines
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("exit {name} ({} fields)", fields.len()));
        }
        fn event(&self, level: Level, _target: &str, message: &str, _fields: &[(&str, FieldValue)]) {
            self.lines
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("{level} {message}"));
        }
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn dispatch_roundtrip_and_filtering() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cap = Arc::new(Capture::default());
        let prev = set_subscriber(cap.clone());
        let span = Span::enter("stage");
        info!("hello {}", 7);
        trace!("filtered out");
        span.exit_with(&[("items", FieldValue::U64(3))]);
        clear_subscriber();
        if let Some(p) = prev {
            set_subscriber(p);
        }
        let lines = cap.lines.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(
            *lines,
            vec![
                "enter stage".to_string(),
                "info hello 7".to_string(),
                "exit stage (1 fields)".to_string()
            ]
        );
    }

    #[test]
    fn no_subscriber_is_a_noop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear_subscriber();
        assert!(!enabled(Level::Error));
        let span = Span::enter("quiet");
        drop(span);
        info!("goes nowhere");
    }
}
