//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so instead of the real
//! serde data model (visitors, `Serializer`/`Deserializer` traits) this stub
//! defines a single concrete JSON-like [`Value`] tree and two small traits:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — rebuild `Self` from a `&Value`.
//!
//! The companion `serde_derive` stub generates impls of both for structs and
//! enums, and the `serde_json` stub adds the text format (parser, printer,
//! `json!`). The subset is self-consistent: anything serialized here
//! round-trips here, and the external JSON syntax is standard, so swapping
//! the real crates back in only changes private wire details (e.g. map key
//! ordering).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization failure. A plain message type: the stub
/// favors clear errors over machine-readable codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number. Integers are kept exact; floats use `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A negative (or any signed) integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            Number::Float(_) => None,
        }
    }

    /// The number as `u64` if exactly representable and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(v) if v.fract() == 0.0 && v >= 0.0 && v < 1.9e19 => Some(v as u64),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s (the JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was already present (in which case insertion order is preserved).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value stored under `key`, if any.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes and returns the value stored under `key`, if any.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-like tree value: the single data model shared by the serde,
/// serde_json, and derive stubs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable element list, if this is an `Array`.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable key/value map, if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is a `String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether this is a `Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Returns `Null` for missing keys / non-objects (serde_json behavior).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Returns `Null` for out-of-range indexes / non-arrays.
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                let conv = $conv;
                match self {
                    Value::Number(n) => n == &conv(*other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(
    i32 => |v: i32| Number::Int(v as i64),
    i64 => Number::Int,
    u32 => |v: u32| Number::UInt(v as u64),
    u64 => Number::UInt,
    usize => |v: usize| Number::UInt(v as u64),
    f64 => Number::Float,
);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into the stub data model. The derive macro generates this.
pub trait Serialize {
    /// Represents `self` as a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

/// Reconstruction from the stub data model. The derive macro generates this.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

/// Marker alias mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($variant:ident : $as:ty : $($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $as))
            }
        }
    )*};
}

impl_ser_int!(Int: i64: i8, i16, i32, i64, isize);
impl_ser_int!(UInt: u64: u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // serde_json cannot represent NaN/±inf; it emits null.
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        (*self as f64).to_json_value()
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
            self.3.to_json_value(),
        ])
    }
}

/// Map keys must serialize to a string or number; anything else is a bug in
/// the caller's data model (mirrors serde_json's key restriction).
fn key_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_json_value() {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(print_number(&n)),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string or number, got {other:?}"
        ))),
    }
}

fn print_number(n: &Number) -> String {
    match *n {
        Number::Int(v) => v.to_string(),
        Number::UInt(v) => v.to_string(),
        Number::Float(v) => {
            if v == v.trunc() && v.abs() < 1.0e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort by key so hash-map iteration order never leaks into output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(k).unwrap_or_else(|_| format!("{:?}", k.to_json_value())),
                    v.to_json_value(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(k).unwrap_or_else(|_| format!("{:?}", k.to_json_value())),
                        v.to_json_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_json_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        // Canonical order independent of hash iteration.
        items.sort_by_key(|v| format!("{v:?}"));
        Value::Array(items)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

macro_rules! impl_de_int {
    ($($t:ty : $via:ident),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                let raw = value.$via().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        value
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        concat!("integer out of range for ", stringify!($t), ": {}"),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_de_int!(
    i8: as_i64, i16: as_i64, i32: as_i64, i64: as_i64, isize: as_i64,
    u8: as_u64, u16: as_u64, u32: as_u64, u64: as_u64, usize: as_u64,
);

impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // Non-finite floats serialize to null; accept the round trip.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom(format!("expected f64, got {value:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Deserialize for () {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            _ => Err(Error::custom(format!("expected null, got {value:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        T::from_json_value(value).map(Box::new)
    }
}

fn expect_array(value: &Value) -> Result<&Vec<Value>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        expect_array(value)?.iter().map(T::from_json_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(value)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

fn tuple_slot<'v>(items: &'v [Value], i: usize, arity: usize) -> Result<&'v Value, Error> {
    items
        .get(i)
        .ok_or_else(|| Error::custom(format!("expected {arity}-tuple, got {} items", items.len())))
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = expect_array(value)?;
        Ok((
            A::from_json_value(tuple_slot(items, 0, 2)?)?,
            B::from_json_value(tuple_slot(items, 1, 2)?)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = expect_array(value)?;
        Ok((
            A::from_json_value(tuple_slot(items, 0, 3)?)?,
            B::from_json_value(tuple_slot(items, 1, 3)?)?,
            C::from_json_value(tuple_slot(items, 2, 3)?)?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = expect_array(value)?;
        Ok((
            A::from_json_value(tuple_slot(items, 0, 4)?)?,
            B::from_json_value(tuple_slot(items, 1, 4)?)?,
            C::from_json_value(tuple_slot(items, 2, 4)?)?,
            D::from_json_value(tuple_slot(items, 3, 4)?)?,
        ))
    }
}

fn expect_object(value: &Value) -> Result<&Map, Error> {
    value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object, got {value:?}")))
}

/// Deserializes a map key from its string form by routing it back through
/// the [`Value`] model (so unit-enum and numeric keys work).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    let as_string = Value::String(key.to_string());
    if let Ok(k) = K::from_json_value(&as_string) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_json_value(&Value::Number(Number::UInt(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_json_value(&Value::Number(Number::Int(n))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot deserialize map key {key:?}")))
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let obj = expect_object(value)?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::from_json_value(v)?);
        }
        Ok(out)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let obj = expect_object(value)?;
        let mut out = BTreeMap::new();
        for (k, v) in obj.iter() {
            out.insert(key_from_string(k)?, V::from_json_value(v)?);
        }
        Ok(out)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        expect_array(value)?.iter().map(T::from_json_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        expect_array(value)?.iter().map(T::from_json_value).collect()
    }
}

// ---------------------------------------------------------------------------
// Support for derive-generated code
// ---------------------------------------------------------------------------

/// Fetches and deserializes a struct field from an object. Missing keys are
/// treated as `null` (so `Option` fields tolerate absent keys), and errors
/// carry the type/field context. Used by derive-generated code; not public
/// API.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(map: &Map, field: &str, ty: &str) -> Result<T, Error> {
    match map.get(field) {
        Some(v) => T::from_json_value(v)
            .map_err(|e| Error::custom(format!("{ty}.{field}: {e}"))),
        None => T::from_json_value(&Value::Null)
            .map_err(|_| Error::custom(format!("{ty}: missing field `{field}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
    }

    #[test]
    fn value_comparisons_with_primitives() {
        let v = Value::Number(Number::UInt(420));
        assert!(v == 420u64);
        assert!(v == 420i32);
        assert!(v == 420usize);
        let s = Value::String("LineString".into());
        assert!(s == "LineString");
        let f = Value::Number(Number::Float(1.0));
        assert!(f == 1.0f64);
        assert!(f == 1i32);
    }

    #[test]
    fn option_round_trip() {
        let some = Some(3u32).to_json_value();
        let none = Option::<u32>::None.to_json_value();
        assert_eq!(Option::<u32>::from_json_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_json_value(&none).unwrap(), None);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1u32);
        m.insert("alpha".to_string(), 2u32);
        let v = m.to_json_value();
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["alpha", "zeta"]);
        let back = HashMap::<String, u32>::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_floats_become_null_and_back_to_nan() {
        assert_eq!(f64::NAN.to_json_value(), Value::Null);
        assert!(f64::from_json_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuple_and_array_round_trip() {
        let t = ("x".to_string(), 3usize);
        let back: (String, usize) = Deserialize::from_json_value(&t.to_json_value()).unwrap();
        assert_eq!(back, t);
        let a = [1.5f64, -2.5];
        let back: [f64; 2] = Deserialize::from_json_value(&a.to_json_value()).unwrap();
        assert_eq!(back, a);
    }
}
