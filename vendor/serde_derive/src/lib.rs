//! Offline stand-in for `serde_derive`.
//!
//! Because `syn`/`quote` are unavailable in this environment, the derives
//! parse the item declaration directly from the raw `proc_macro` token
//! stream and emit code by string construction. Supported shapes — which
//! cover every derived type in this workspace — are:
//!
//! * structs with named fields (including generic type parameters);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * unit structs;
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like real serde).
//!
//! `#[serde(...)]` attributes are not interpreted; none are used in this
//! workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic parameter of the deriving item.
struct GenericParam {
    /// Full declaration as written, e.g. `T: Clone` or `'a` or `const N: usize`.
    decl: String,
    /// Bare name used in the type argument list, e.g. `T`, `'a`, `N`.
    name: String,
    /// Whether this is a type parameter (gets the extra trait bound).
    is_type: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    kind: ItemKind,
}

/// Derives the stub `serde::Serialize` (a `to_json_value` method).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = gen_serialize(&item);
    code.parse().unwrap_or_else(|e| {
        compile_error(&format!("serde_derive stub produced invalid code: {e:?}"))
    })
}

/// Derives the stub `serde::Deserialize` (a `from_json_value` constructor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = gen_deserialize(&item);
    code.parse().unwrap_or_else(|e| {
        compile_error(&format!("serde_derive stub produced invalid code: {e:?}"))
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(id) if id.to_string() == word)
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Advances past any `#[...]` attributes starting at `i`.
fn skip_attributes(tts: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tts.len()
        && is_punct(&tts[i], '#')
        && matches!(&tts[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)` starting at `i`.
fn skip_visibility(tts: &[TokenTree], mut i: usize) -> usize {
    if i < tts.len() && is_ident(&tts[i], "pub") {
        i += 1;
        if i < tts.len()
            && matches!(&tts[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tts: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_visibility(&tts, skip_attributes(&tts, 0));

    let is_enum = if i < tts.len() && is_ident(&tts[i], "struct") {
        false
    } else if i < tts.len() && is_ident(&tts[i], "enum") {
        true
    } else {
        return Err("serde_derive stub: expected `struct` or `enum`".into());
    };
    i += 1;

    let name = match tts.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: expected item name".into()),
    };
    i += 1;

    let (generics, next) = parse_generics(&tts, i)?;
    i = next;

    if i < tts.len() && is_ident(&tts[i], "where") {
        return Err(format!(
            "serde_derive stub: `where` clauses are not supported (on `{name}`)"
        ));
    }

    let kind = if is_enum {
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde_derive stub: expected enum body for `{name}`")),
        }
    } else {
        match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(tt) if is_punct(tt, ';') => ItemKind::UnitStruct,
            None => ItemKind::UnitStruct,
            _ => return Err(format!("serde_derive stub: expected struct body for `{name}`")),
        }
    };

    Ok(Item {
        name,
        generics,
        kind,
    })
}

/// Parses an optional `<...>` generics list starting at `i`; returns the
/// params and the index just past the closing `>`.
fn parse_generics(tts: &[TokenTree], i: usize) -> Result<(Vec<GenericParam>, usize), String> {
    if i >= tts.len() || !is_punct(&tts[i], '<') {
        return Ok((Vec::new(), i));
    }
    let mut depth = 1usize;
    let mut j = i + 1;
    let mut current: Vec<&TokenTree> = Vec::new();
    let mut params: Vec<GenericParam> = Vec::new();
    while j < tts.len() {
        if is_punct(&tts[j], '<') {
            depth += 1;
        } else if is_punct(&tts[j], '>') {
            depth -= 1;
            if depth == 0 {
                if !current.is_empty() {
                    params.push(param_from_tokens(&current)?);
                }
                return Ok((params, j + 1));
            }
        } else if depth == 1 && is_punct(&tts[j], ',') {
            if !current.is_empty() {
                params.push(param_from_tokens(&current)?);
            }
            current = Vec::new();
            j += 1;
            continue;
        }
        current.push(&tts[j]);
        j += 1;
    }
    Err("serde_derive stub: unclosed generics list".into())
}

fn param_from_tokens(tokens: &[&TokenTree]) -> Result<GenericParam, String> {
    let decl = tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    // Lifetime: `'` `a` [: bounds]
    if is_punct(tokens[0], '\'') {
        let name = match tokens.get(1) {
            Some(TokenTree::Ident(id)) => format!("'{id}"),
            _ => return Err("serde_derive stub: malformed lifetime param".into()),
        };
        return Ok(GenericParam {
            decl,
            name,
            is_type: false,
        });
    }
    // Const: `const` NAME `:` ty
    if is_ident(tokens[0], "const") {
        let name = match tokens.get(1) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde_derive stub: malformed const param".into()),
        };
        return Ok(GenericParam {
            decl,
            name,
            is_type: false,
        });
    }
    // Type: NAME [: bounds] [= default]
    let name = match tokens.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: malformed generic param".into()),
    };
    // Drop any `= default` from the declaration (not legal in impl headers).
    let decl = match decl.split_once('=') {
        Some((head, _)) => head.trim().to_string(),
        None => decl,
    };
    Ok(GenericParam {
        decl,
        name,
        is_type: true,
    })
}

/// Parses `name: Type, ...` bodies, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tts.len() {
        i = skip_visibility(&tts, skip_attributes(&tts, i));
        if i >= tts.len() {
            break;
        }
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected field name, got `{other}`"
                ))
            }
        };
        i += 1;
        if i >= tts.len() || !is_punct(&tts[i], ':') {
            return Err(format!(
                "serde_derive stub: expected `:` after field `{name}`"
            ));
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tts.len() {
            if is_punct(&tts[i], '<') {
                depth += 1;
            } else if is_punct(&tts[i], '>') {
                depth -= 1;
            } else if depth == 0 && is_punct(&tts[i], ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    if tts.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut saw_trailing_comma = false;
    for (i, tt) in tts.iter().enumerate() {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if depth == 0 && is_punct(tt, ',') {
            if i + 1 == tts.len() {
                saw_trailing_comma = true;
            } else {
                count += 1;
            }
        }
        let _ = saw_trailing_comma;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tts: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tts.len() {
        i = skip_attributes(&tts, i);
        if i >= tts.len() {
            break;
        }
        let name = match &tts[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected variant name, got `{other}`"
                ))
            }
        };
        i += 1;
        let kind = match tts.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while i < tts.len() && !is_punct(&tts[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<...> Trait for Name<...>` header pieces: (impl generics, type args).
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_generics = item
        .generics
        .iter()
        .map(|p| {
            if p.is_type {
                if p.decl.contains(':') {
                    format!("{} + {bound}", p.decl)
                } else {
                    format!("{}: {bound}", p.decl)
                }
            } else {
                p.decl.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let type_args = item
        .generics
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    (format!("<{impl_generics}>"), format!("<{type_args}>"))
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, type_args) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut b = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "__map.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            b.push_str("::serde::Value::Object(__map)");
            b
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         __map.insert(::std::string::String::from({vn:?}), \
                         ::serde::Serialize::to_json_value(__f0));\n\
                         ::serde::Value::Object(__map)\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_json_value(__f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Array(::std::vec![{items}]));\n\
                             ::serde::Value::Object(__map)\n}}\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __map = ::serde::Map::new();\n\
                             __map.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__map)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{type_args} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, type_args) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut b = format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(::std::format!(\
                 \"expected object for {name}, got {{:?}}\", __value)))?;\n"
            );
            b.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                b.push_str(&format!(
                    "{f}: ::serde::__get_field(__obj, {f:?}, {name:?})?,\n"
                ));
            }
            b.push_str("})");
            b
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__value)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let mut b = format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(::std::format!(\
                 \"expected array for {name}, got {{:?}}\", __value)))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"expected {n} elements for {name}, got {{}}\", \
                 __items.len())));\n}}\n"
            );
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            b.push_str(&format!("::std::result::Result::Ok({name}({items}))"));
            b
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut b = String::from("if let ::std::option::Option::Some(__s) = __value.as_str() {\nmatch __s {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    b.push_str(&format!(
                        "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            b.push_str("_ => {}\n}\n}\n");
            b.push_str("if let ::std::option::Option::Some(__obj) = __value.as_object() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => b.push_str(&format!(
                        "if let ::std::option::Option::Some(__inner) = __obj.get({vn:?}) {{\n\
                         return ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(__inner)?));\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&__items[{i}])?")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        b.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = __obj.get({vn:?}) {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array variant payload\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple variant arity\"));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vn}({items}));\n}}\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = format!(
                            "let __vobj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object variant payload\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::__get_field(__vobj, {f:?}, {name:?})?,\n"
                            ));
                        }
                        inner.push_str("});\n");
                        b.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = __obj.get({vn:?}) {{\n\
                             {inner}}}\n"
                        ));
                    }
                }
            }
            b.push_str("}\n");
            b.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"no variant of {name} matches {{:?}}\", __value)))"
            ));
            b
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{type_args} {{\n\
         fn from_json_value(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
