//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny replacement built on `std::thread::scope`. The API
//! mirrors `rayon` closely enough that swapping the real crate back in is
//! a one-line change in the workspace manifest.
//!
//! Two properties matter more than raw scheduling cleverness here:
//!
//! 1. **Order preservation.** Every driver splits its input into
//!    contiguous chunks, processes each chunk in input order on its own
//!    thread, and concatenates the chunk results in chunk order. The
//!    output of `collect()` is therefore byte-identical to a serial run —
//!    the workspace's determinism contract (DESIGN.md §7) leans on this.
//! 2. **Degenerate serial execution.** With one thread (or one item) no
//!    thread is spawned at all; the closure chain runs inline. "Parallel
//!    at 1 thread" and "serial" are the same code path by construction.
//!
//! Covered surface: `prelude::*` with `par_iter` over slices,
//! `into_par_iter` over `Vec<T>` and `Range<usize>`, `par_chunks`, the
//! `map` adapter, `collect`/`for_each`/`reduce` terminals,
//! `ThreadPoolBuilder::{new, num_threads, build_global}` and
//! `current_num_threads`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Globally configured thread count (0 = unset).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Error returned when the global pool is configured twice.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the (stubbed) global thread pool. Only the thread count is
/// retained; there is no persistent pool — threads are scoped per call.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Errs if already installed,
    /// mirroring rayon's one-shot global pool.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            available_threads()
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.compare_exchange(0, n, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The number of threads parallel drivers will use: the globally built
/// pool size if configured, else `RAYON_NUM_THREADS`, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::SeqCst);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    available_threads()
}

/// The ordered, chunked driver behind every terminal operation.
///
/// Splits `items` into at most `threads` contiguous chunks and maps `f`
/// over every item, preserving input order in the output.
fn drive_ordered<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    // Partition into owned chunks, front to back.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator: a materialized item source plus a composed
/// per-item closure chain, executed by [`drive_ordered`] at a terminal.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced at terminals.
    type Item: Send;

    /// Materializes all items in parallel, preserving input order.
    fn to_vec(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (lazy; composed into the chain).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into any `FromIterator` collection, in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.to_vec().into_iter().collect()
    }

    /// Runs `f` on every item (unordered in real rayon; ordered here).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).to_vec();
    }

    /// Folds all items with `op`, starting from `identity()`.
    ///
    /// The stub folds the (parallel-computed) items left to right, so the
    /// result is deterministic for any `op` — stricter than real rayon,
    /// which requires associativity for a stable answer.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.to_vec().into_iter().fold(identity(), op)
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.to_vec().into_iter().sum()
    }
}

/// Lazy `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn to_vec(self) -> Vec<R> {
        let Map { base, f } = self;
        drive_ordered(base.to_vec(), current_num_threads(), f)
    }
}

impl<B, F> Map<B, F> {
    /// No-op in the stub (rayon uses it to bound splitting granularity).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn to_vec(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Parallel iterator over owned `Vec<T>`.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn to_vec(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator over contiguous sub-slices of fixed size.
pub struct ChunksIter<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn to_vec(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size.max(1)).collect()
    }
}

/// Conversion into a parallel iterator (owned).
pub trait IntoParallelIterator {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = VecIter<usize>;
    type Item = usize;

    fn into_par_iter(self) -> VecIter<usize> {
        VecIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send + 'a;
    /// Borrows `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_chunks` over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `size` items (the last
    /// chunk may be shorter).
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        ChunksIter { slice: self, size }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).map(|i| i as u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        let serial: Vec<u64> = v.iter().map(|&x| x * 2).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn into_par_iter_owned_and_range() {
        let out: Vec<usize> = vec![3usize, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let sq: Vec<usize> = (0..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(sq, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = v.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), v.iter().sum::<u32>());
        assert_eq!(sums[0], (0..10).sum::<u32>());
    }

    #[test]
    fn reduce_and_sum_agree_with_serial() {
        let v: Vec<u64> = (1..=100).collect();
        let r = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 5050);
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<i64> = (0..50).collect();
        let out: Vec<i64> = v.par_iter().map(|&x| x + 1).map(|x| x * 3).collect();
        assert_eq!(out, (0..50).map(|x| (x + 1) * 3).collect::<Vec<_>>());
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
