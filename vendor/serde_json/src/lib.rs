//! Offline stand-in for the subset of `serde_json` this workspace uses.
//!
//! Builds on the `serde` stub's concrete [`Value`] data model and adds the
//! JSON text format: a recursive-descent parser, compact and pretty
//! printers, the `to_string`/`from_str`/`to_value`/`from_value` entry
//! points, and a `json!` macro supporting nested object/array literals with
//! arbitrary Rust expressions in value position.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Map, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value into the [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Deserializes a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_json_value(&value)
}

/// Escapes a serde-level opaque function so the `json!` macro can serialize
/// expression operands. Not public API.
#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if !v.is_finite() {
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1.0e15 {
                // Keep a decimal point so the value re-parses as a float,
                // matching serde_json's formatting of whole floats.
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth accepted by the parser. Malformed or adversarial
/// input (e.g. a corrupted fault-plan file) must fail cleanly, not blow the
/// stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.error("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.error("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.error("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Object and array literals
/// may nest; value positions accept arbitrary Rust expressions implementing
/// the stub `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_list!([] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __json_map = $crate::Map::new();
        $crate::json_entries!(__json_map () $($tt)+);
        $crate::Value::Object(__json_map)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Internal: accumulates array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_list {
    ([$($elems:expr,)*]) => { ::std::vec![$($elems),*] };
    ([$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    ([$($elems:expr,)*] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($elems,)* $crate::json!({ $($obj)* }),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($elems,)* $crate::json!([ $($arr)* ]),] $($($rest)*)?)
    };
    ([$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_list!([$($elems,)* $crate::json!($next),] $($($rest)*)?)
    };
}

/// Internal: accumulates object entries. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident ()) => {};
    ($map:ident () $key:tt : $($rest:tt)*) => {
        $crate::json_entries!($map ($key) $($rest)*)
    };
    ($map:ident ($key:tt) null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_entries!($map () $($($rest)*)?);
    };
    ($map:ident ($key:tt) { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($obj)* }));
        $crate::json_entries!($map () $($($rest)*)?);
    };
    ($map:ident ($key:tt) [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($arr)* ]));
        $crate::json_entries!($map () $($($rest)*)?);
    };
    ($map:ident ($key:tt) $value:expr $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
        $crate::json_entries!($map () $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a": [1, 2.5, -3, true, null, "s\n"], "b": {"c": 1e3}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], 2.5f64);
        assert_eq!(v["a"][2], -3i64);
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["a"][5], "s\n");
        assert_eq!(v["b"]["c"], 1000.0f64);
        let printed = to_string(&v).unwrap();
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v = json!({"k": [1, {"n": null}], "s": "x"});
        let printed = to_string_pretty(&v).unwrap();
        assert!(printed.contains('\n'));
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn json_macro_shapes() {
        let name = "conduit";
        let count = 3usize;
        let v = json!({
            "type": "Feature",
            "name": name,
            "count": count,
            "half": count as f64 / 2.0,
            "tags": ["a", "b"],
            "coords": [1.5, -2.5],
            "nested": { "empty": {}, "list": [], "flag": true, "none": null },
            "pick": match count { 3 => "three", _ => "other" },
        });
        assert_eq!(v["type"], "Feature");
        assert_eq!(v["name"], "conduit");
        assert_eq!(v["count"], 3usize);
        assert_eq!(v["half"], 1.5f64);
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["coords"][1], -2.5f64);
        assert!(v["nested"]["empty"].is_object());
        assert!(v["nested"]["list"].is_array());
        assert_eq!(v["nested"]["flag"], true);
        assert!(v["nested"]["none"].is_null());
        assert_eq!(v["pick"], "three");
        assert!(v.get("missing").is_none());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀 café""#).unwrap();
        assert_eq!(v, "é😀 café");
        let printed = to_string(&v).unwrap();
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn parse_errors_are_errors_not_panics() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,,2]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\":1} x").is_err());
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(from_str::<Value>(&deep).is_err());
    }
}
