//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical machinery it runs a fixed warmup +
//! measurement loop and prints mean wall-clock time per iteration.
//!
//! Benchmarks only execute when the binary receives `--bench` (which
//! `cargo bench` passes) or when `INTERTUBES_FORCE_BENCH=1` is set. Under
//! `cargo test` the bench binaries therefore exit immediately — including
//! skipping their (expensive) setup code — keeping the tier-1 test run
//! fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub accepts all variants
/// and treats them identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times a single benchmark's closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Bencher {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    enabled: bool,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            enabled: bench_mode(),
            sample_size: 20,
        }
    }
}

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
        || std::env::var("INTERTUBES_FORCE_BENCH").map_or(false, |v| v == "1")
}

/// Whether this process should actually run benchmarks (true under
/// `cargo bench`, false under `cargo test`). Used by `criterion_group!` to
/// skip even the setup work in test builds.
pub fn should_run() -> bool {
    bench_mode()
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        if self.enabled {
            let mut b = Bencher::new(self.sample_size);
            f(&mut b);
            report(&id.to_string(), &b);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        if self.criterion.enabled {
            let iters = self.sample_size.unwrap_or(self.criterion.sample_size);
            let mut b = Bencher::new(iters);
            f(&mut b);
            report(&format!("{}/{}", self.name, id), &b);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    let per_iter = if b.iterations > 0 {
        b.elapsed / b.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {name:<50} {:>12.3?} /iter ({} iters)",
        per_iter, b.iterations
    );
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            if !$crate::should_run() {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_outside_bench_mode() {
        // Unit tests never pass --bench, so closures must not run.
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran);
    }

    #[test]
    fn bencher_measures_when_forced() {
        let mut b = Bencher::new(3);
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 4); // warmup + 3 measured
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u8, 2], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed < Duration::from_secs(1));
    }
}
